"""Prometheus text exposition of the metrics registry + scrape endpoint.

Rendering follows the Prometheus text format (version 0.0.4):

* counters are exposed as ``<name>_total`` with ``# TYPE ... counter``;
* gauges keep their name with ``# TYPE ... gauge``;
* histograms are exposed as *summaries* — ``<name>{quantile="0.5"}``
  (plus 0.9/0.99), ``<name>_sum`` and ``<name>_count`` — because the
  registry keeps sampled percentiles, not fixed buckets; exact min/max
  ride along as ``<name>_min`` / ``<name>_max`` gauges.

Metric names translate dots to underscores (``serve.latency_ms`` →
``serve_latency_ms``); :func:`metric_name` is the single source of that
mapping and :func:`parse_exposition` is the strict round-trip parser the
telemetry smoke test validates scrapes with.

:class:`MetricsServer` is a deliberately tiny stdlib ``http.server``
wrapper — one daemon thread, ``GET /metrics`` for Prometheus,
``GET /telemetry`` for the windowed JSON view when a
:class:`~repro.obs.timeseries.TimeSeries` is attached, ``GET /healthz``
for liveness.  It is wired into ``python -m repro serve
--metrics-port`` (see ``docs/serving.md``); there is intentionally no
auth, TLS or routing beyond that — run it on loopback or behind a real
proxy.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .metrics import (
    MetricsRegistry,
    _escape_label_value,
    _unescape_label_value,
    get_registry,
    parse_labeled,
)
from .timeseries import DEFAULT_WINDOWS, TimeSeries

__all__ = [
    "CONTENT_TYPE",
    "ExpositionNameError",
    "MetricsServer",
    "metric_name",
    "parse_exposition",
    "render_prometheus",
    "validate_metric_name",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: The exposition grammar for a full metric name (prometheus.io data
#: model); what :func:`metric_name` must produce for a scrape to parse.
_VALID_PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class ExpositionNameError(ValueError):
    """A metric name that cannot be exposed on ``/metrics``.

    Raised at *registration* time when the exposition validator is
    installed on the registry (see
    :meth:`repro.obs.metrics.MetricsRegistry.set_name_validator`), so a
    typo'd metric name fails at the call site that introduced it instead
    of rendering an unscrapeable exposition page.
    """

    def __init__(self, name: str, reason: str):
        super().__init__(
            f"metric name {name!r} cannot be exposed to Prometheus: "
            f"{reason}"
        )
        self.name = name
        self.reason = reason


def validate_metric_name(name: str) -> None:
    """Reject ``name`` unless its exposition form obeys the grammar.

    Registry names are dotted (``serve.latency_ms``); the check runs on
    the :func:`metric_name` mapping (dots become underscores) plus the
    constraints the mapping cannot repair: emptiness and reserved
    ``__``-prefixed names.  Raises :class:`ExpositionNameError`.
    """
    if not isinstance(name, str) or not name:
        raise ExpositionNameError(str(name), "name must be a non-empty string")
    exposed = name.replace(".", "_")
    if exposed.startswith("__"):
        raise ExpositionNameError(
            name, "names starting with '__' are reserved by Prometheus"
        )
    if not _VALID_PROM_NAME.match(exposed):
        bad = sorted(set(_INVALID_CHARS.findall(exposed)))
        raise ExpositionNameError(
            name,
            f"maps to {exposed!r} which violates the exposition grammar "
            f"[a-zA-Z_:][a-zA-Z0-9_:]* (offending characters: {bad})",
        )

#: Summary quantile label -> key in ``Histogram.summary()``.
_QUANTILES: "Tuple[Tuple[str, str], ...]" = (
    ("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"),
)


def metric_name(name: str) -> str:
    """A registry metric name as a valid Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    """Floats in Go-compatible exposition form (ints without ``.0``)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_suffix(
    labels: "Dict[str, str]",
    extra: "Optional[Tuple[str, str]]" = None,
) -> str:
    """Render a label dict as ``{k="v",...}`` (sorted, escaped).

    ``extra`` appends one synthetic pair after the user labels — the
    summary ``quantile`` label, which Prometheus convention keeps last.
    Empty labels render as the empty string.
    """
    pairs = [
        (key, _escape_label_value(value))
        for key, value in sorted(labels.items())
    ]
    if extra is not None:
        pairs.append((extra[0], _escape_label_value(extra[1])))
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def _families(entries: "Dict[str, object]"):
    """Group ``{canonical_key: value}`` by base name.

    Yields ``(base, [(labels, value), ...])`` — one Prometheus metric
    family per base name, labeled children under one ``# TYPE`` line.
    """
    families: "Dict[str, list]" = {}
    for name, value in entries.items():
        base, labels = parse_labeled(name)
        families.setdefault(base, []).append((labels, value))
    return families.items()


def render_prometheus(registry: "Optional[MetricsRegistry]" = None) -> str:
    """The whole registry in Prometheus text exposition format.

    Labeled registry keys (``serve.fallback{stage="batch"}``) render as
    real Prometheus labels: every label set of a base name becomes a
    child sample under a single ``# TYPE`` family line.
    """
    data = (registry or get_registry()).as_dict()
    lines: "list[str]" = []
    for name, children in _families(data["counters"]):
        prom = metric_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        for labels, value in children:
            lines.append(
                f"{prom}{_labels_suffix(labels)} {_format_value(value)}"
            )
    for name, children in _families(data["gauges"]):
        prom = metric_name(name)
        lines.append(f"# TYPE {prom} gauge")
        for labels, value in children:
            lines.append(
                f"{prom}{_labels_suffix(labels)} {_format_value(value)}"
            )
    for name, children in _families(data["histograms"]):
        prom = metric_name(name)
        lines.append(f"# TYPE {prom} summary")
        for labels, summary in children:
            for label, key in _QUANTILES:
                value = summary.get(key, 0.0)
                suffix = _labels_suffix(labels, ("quantile", label))
                lines.append(f"{prom}{suffix} {_format_value(value)}")
            lines.append(
                f"{prom}_sum{_labels_suffix(labels)}"
                f" {_format_value(summary['sum'])}"
            )
            lines.append(
                f"{prom}_count{_labels_suffix(labels)}"
                f" {_format_value(summary['count'])}"
            )
        observed = [(lbl, s) for lbl, s in children if s["count"]]
        if observed:
            lines.append(f"# TYPE {prom}_min gauge")
            for labels, summary in observed:
                lines.append(
                    f"{prom}_min{_labels_suffix(labels)}"
                    f" {_format_value(summary['min'])}"
                )
            lines.append(f"# TYPE {prom}_max gauge")
            for labels, summary in observed:
                lines.append(
                    f"{prom}_max{_labels_suffix(labels)}"
                    f" {_format_value(summary['max'])}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_LABEL = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


def _parse_sample_line(
    line: str, lineno: int
) -> "Tuple[str, Dict[str, str], str]":
    """One exposition sample line -> ``(name, labels, value_token)``.

    Quote- and escape-aware, so a ``}`` or ``,`` inside a quoted label
    value does not end the label block (the failure mode of the old
    single-regex parser).  Raises :class:`ValueError` with the line
    number on any malformation.
    """

    def fail(reason: str) -> "ValueError":
        return ValueError(
            f"malformed exposition line {lineno} ({reason}): {line!r}"
        )

    match = _SAMPLE_NAME.match(line)
    if match is None:
        raise fail("no metric name")
    name = match.group(0)
    i = match.end()
    labels: "Dict[str, str]" = {}
    if i < len(line) and line[i] == "{":
        i += 1
        while True:
            if i >= len(line):
                raise fail("unterminated label block")
            if line[i] == "}":
                i += 1
                break
            lmatch = _SAMPLE_LABEL.match(line, i)
            if lmatch is None:
                raise fail("bad label name")
            label = lmatch.group(0)
            i = lmatch.end()
            if i >= len(line) or line[i] != "=":
                raise fail("label without '='")
            i += 1
            if i >= len(line) or line[i] != '"':
                raise fail("unquoted label value")
            i += 1
            raw: "list[str]" = []
            while i < len(line):
                ch = line[i]
                if ch == "\\":
                    if i + 1 >= len(line):
                        raise fail("dangling escape in label value")
                    raw.append(line[i : i + 2])
                    i += 2
                    continue
                if ch == '"':
                    break
                raw.append(ch)
                i += 1
            else:
                raise fail("unterminated label value")
            labels[label] = _unescape_label_value("".join(raw))
            i += 1  # closing quote
            if i < len(line) and line[i] == ",":
                i += 1
    if i >= len(line) or line[i] != " ":
        raise fail("expected a single space before the value")
    value = line[i + 1 :]
    if not value or " " in value:
        raise fail("expected exactly one value token")
    return name, labels, value


def parse_exposition(text: str) -> "Dict[str, float]":
    """Strictly parse exposition text into ``{sample_name: value}``.

    Labels are folded into a canonical key — sorted label names,
    re-escaped values — so ``serve_latency_ms{quantile="0.5"}`` stays
    one sample and a rendered exposition round-trips exactly even when
    label values contain ``,``, ``}``, quotes or newlines.  Raises
    :class:`ValueError` on any line that is neither a comment nor a
    well-formed sample — the validation the CI telemetry smoke leg runs
    on a live scrape.
    """
    samples: "Dict[str, float]" = {}
    # Split on newline only: splitlines() would also split on control
    # characters (\x0b, \x0c, \x1c..) that are legal inside escaped
    # label values and would tear a sample line in two.
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        name, labels, token = _parse_sample_line(line, lineno)
        key = name + _labels_suffix(labels)
        try:
            samples[key] = float(token)
        except ValueError:
            raise ValueError(
                f"non-numeric sample value on line {lineno}: {line!r}"
            ) from None
    return samples


class MetricsServer:
    """Loopback HTTP scrape endpoint over one registry.

    ``port=0`` binds an ephemeral port (read it back from ``.port``) —
    tests and the smoke tool rely on this.  Usable as a context
    manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        registry: "Optional[MetricsRegistry]" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        timeseries: "Optional[TimeSeries]" = None,
        tracestore=None,
        watchdog=None,
        analytics=None,
    ):
        """``tracestore`` (a :class:`~repro.obs.tracestore.TraceStore`)
        adds ``GET /trace/<id>`` — the stored trace, its span tree and
        critical path as JSON, the link target for /telemetry exemplars.
        ``watchdog`` (a :class:`~repro.obs.slo.SLOWatchdog`) adds SLO
        state to ``/telemetry`` and flips ``/healthz`` to 503 while any
        objective pages.  ``analytics`` (a
        :class:`~repro.obs.analytics.AccessRecorder`) adds
        ``GET /analytics`` — the live workload-skew report as JSON."""
        self.registry = registry  # None = the process-wide registry
        self.timeseries = timeseries
        self.tracestore = tracestore
        self.watchdog = watchdog
        self.analytics = analytics
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path in ("/metrics", "/"):
                    body = render_prometheus(server.registry).encode()
                    self._reply(200, CONTENT_TYPE, body)
                elif self.path == "/telemetry":
                    body = json.dumps(
                        server.telemetry_document(), sort_keys=True
                    ).encode()
                    self._reply(200, "application/json", body)
                elif self.path == "/analytics":
                    if server.analytics is None:
                        self._reply(
                            404, "text/plain", b"no analytics recorder\n"
                        )
                    else:
                        body = json.dumps(
                            server.analytics.report(), sort_keys=True
                        ).encode()
                        self._reply(200, "application/json", body)
                elif self.path == "/healthz":
                    if server.watchdog is not None and server.watchdog.paging:
                        self._reply(503, "text/plain", b"paging\n")
                    else:
                        self._reply(200, "text/plain", b"ok\n")
                elif self.path.startswith("/trace/"):
                    document = server.trace_document(
                        self.path[len("/trace/"):]
                    )
                    if document is None:
                        self._reply(404, "text/plain", b"no such trace\n")
                    else:
                        body = json.dumps(document, sort_keys=True).encode()
                        self._reply(200, "application/json", body)
                else:
                    self._reply(404, "text/plain", b"not found\n")

            def _reply(self, status: int, ctype: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # scrapes stay quiet
                return None

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread: "Optional[threading.Thread]" = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def telemetry_document(self) -> "Dict[str, object]":
        """The windowed JSON view served at ``/telemetry``.

        Histogram window summaries carry tail ``exemplars`` — resolve a
        ``trace_id`` via ``GET /trace/<id>``.  With a watchdog attached
        the document gains an ``slo`` section; with a trace store, a
        ``traces`` retention summary.
        """
        document: "Dict[str, object]" = {"windows": {}}
        if self.timeseries is not None:
            document["windows"] = {
                str(seconds): snapshot.as_dict()
                for seconds, snapshot in
                self.timeseries.windows(DEFAULT_WINDOWS).items()
            }
        if self.watchdog is not None:
            document["slo"] = self.watchdog.status()
        if self.tracestore is not None:
            document["traces"] = {
                "stored": len(self.tracestore),
                "added": self.tracestore.added,
                "dropped": self.tracestore.dropped,
            }
        if self.analytics is not None:
            document["analytics"] = self.analytics.report()
        return document

    def trace_document(self, trace_id: str) -> "Optional[Dict[str, object]]":
        """One stored trace as JSON, or ``None`` if unknown."""
        if self.tracestore is None:
            return None
        trace = self.tracestore.get(trace_id)
        if trace is None:
            return None
        from .export import span_to_dict
        from .tracestore import critical_path

        document = trace.as_dict()
        document["critical_path"] = critical_path(
            trace, self.tracestore
        ).as_dict()
        document["root"] = span_to_dict(trace.root)
        return document

    def start(self) -> "MetricsServer":
        """Serve scrapes on a daemon thread; returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
