"""Prometheus text exposition of the metrics registry + scrape endpoint.

Rendering follows the Prometheus text format (version 0.0.4):

* counters are exposed as ``<name>_total`` with ``# TYPE ... counter``;
* gauges keep their name with ``# TYPE ... gauge``;
* histograms are exposed as *summaries* — ``<name>{quantile="0.5"}``
  (plus 0.9/0.99), ``<name>_sum`` and ``<name>_count`` — because the
  registry keeps sampled percentiles, not fixed buckets; exact min/max
  ride along as ``<name>_min`` / ``<name>_max`` gauges.

Metric names translate dots to underscores (``serve.latency_ms`` →
``serve_latency_ms``); :func:`metric_name` is the single source of that
mapping and :func:`parse_exposition` is the strict round-trip parser the
telemetry smoke test validates scrapes with.

:class:`MetricsServer` is a deliberately tiny stdlib ``http.server``
wrapper — one daemon thread, ``GET /metrics`` for Prometheus,
``GET /telemetry`` for the windowed JSON view when a
:class:`~repro.obs.timeseries.TimeSeries` is attached, ``GET /healthz``
for liveness.  It is wired into ``python -m repro serve
--metrics-port`` (see ``docs/serving.md``); there is intentionally no
auth, TLS or routing beyond that — run it on loopback or behind a real
proxy.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .metrics import MetricsRegistry, get_registry
from .timeseries import DEFAULT_WINDOWS, TimeSeries

__all__ = [
    "CONTENT_TYPE",
    "ExpositionNameError",
    "MetricsServer",
    "metric_name",
    "parse_exposition",
    "render_prometheus",
    "validate_metric_name",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: The exposition grammar for a full metric name (prometheus.io data
#: model); what :func:`metric_name` must produce for a scrape to parse.
_VALID_PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class ExpositionNameError(ValueError):
    """A metric name that cannot be exposed on ``/metrics``.

    Raised at *registration* time when the exposition validator is
    installed on the registry (see
    :meth:`repro.obs.metrics.MetricsRegistry.set_name_validator`), so a
    typo'd metric name fails at the call site that introduced it instead
    of rendering an unscrapeable exposition page.
    """

    def __init__(self, name: str, reason: str):
        super().__init__(
            f"metric name {name!r} cannot be exposed to Prometheus: "
            f"{reason}"
        )
        self.name = name
        self.reason = reason


def validate_metric_name(name: str) -> None:
    """Reject ``name`` unless its exposition form obeys the grammar.

    Registry names are dotted (``serve.latency_ms``); the check runs on
    the :func:`metric_name` mapping (dots become underscores) plus the
    constraints the mapping cannot repair: emptiness and reserved
    ``__``-prefixed names.  Raises :class:`ExpositionNameError`.
    """
    if not isinstance(name, str) or not name:
        raise ExpositionNameError(str(name), "name must be a non-empty string")
    exposed = name.replace(".", "_")
    if exposed.startswith("__"):
        raise ExpositionNameError(
            name, "names starting with '__' are reserved by Prometheus"
        )
    if not _VALID_PROM_NAME.match(exposed):
        bad = sorted(set(_INVALID_CHARS.findall(exposed)))
        raise ExpositionNameError(
            name,
            f"maps to {exposed!r} which violates the exposition grammar "
            f"[a-zA-Z_:][a-zA-Z0-9_:]* (offending characters: {bad})",
        )

#: Summary quantile label -> key in ``Histogram.summary()``.
_QUANTILES: "Tuple[Tuple[str, str], ...]" = (
    ("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"),
)


def metric_name(name: str) -> str:
    """A registry metric name as a valid Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    """Floats in Go-compatible exposition form (ints without ``.0``)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: "Optional[MetricsRegistry]" = None) -> str:
    """The whole registry in Prometheus text exposition format."""
    data = (registry or get_registry()).as_dict()
    lines: "list[str]" = []
    for name, value in data["counters"].items():
        prom = metric_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_format_value(value)}")
    for name, value in data["gauges"].items():
        prom = metric_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_format_value(value)}")
    for name, summary in data["histograms"].items():
        prom = metric_name(name)
        lines.append(f"# TYPE {prom} summary")
        for label, key in _QUANTILES:
            value = summary.get(key, 0.0)
            lines.append(
                f'{prom}{{quantile="{label}"}} {_format_value(value)}'
            )
        lines.append(f"{prom}_sum {_format_value(summary['sum'])}")
        lines.append(f"{prom}_count {_format_value(summary['count'])}")
        if summary["count"]:
            lines.append(f"# TYPE {prom}_min gauge")
            lines.append(f"{prom}_min {_format_value(summary['min'])}")
            lines.append(f"# TYPE {prom}_max gauge")
            lines.append(f"{prom}_max {_format_value(summary['max'])}")
    return "\n".join(lines) + "\n"


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)


def parse_exposition(text: str) -> "Dict[str, float]":
    """Strictly parse exposition text into ``{sample_name: value}``.

    Labels are folded into the key (``serve_latency_ms{quantile="0.5"}``
    stays one sample).  Raises :class:`ValueError` on any line that is
    neither a comment nor a well-formed sample — the validation the CI
    telemetry smoke leg runs on a live scrape.
    """
    samples: "Dict[str, float]" = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        key = match.group("name") + (match.group("labels") or "")
        try:
            samples[key] = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"non-numeric sample value on line {lineno}: {line!r}"
            ) from None
    return samples


class MetricsServer:
    """Loopback HTTP scrape endpoint over one registry.

    ``port=0`` binds an ephemeral port (read it back from ``.port``) —
    tests and the smoke tool rely on this.  Usable as a context
    manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        registry: "Optional[MetricsRegistry]" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        timeseries: "Optional[TimeSeries]" = None,
        tracestore=None,
        watchdog=None,
    ):
        """``tracestore`` (a :class:`~repro.obs.tracestore.TraceStore`)
        adds ``GET /trace/<id>`` — the stored trace, its span tree and
        critical path as JSON, the link target for /telemetry exemplars.
        ``watchdog`` (a :class:`~repro.obs.slo.SLOWatchdog`) adds SLO
        state to ``/telemetry`` and flips ``/healthz`` to 503 while any
        objective pages."""
        self.registry = registry  # None = the process-wide registry
        self.timeseries = timeseries
        self.tracestore = tracestore
        self.watchdog = watchdog
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path in ("/metrics", "/"):
                    body = render_prometheus(server.registry).encode()
                    self._reply(200, CONTENT_TYPE, body)
                elif self.path == "/telemetry":
                    body = json.dumps(
                        server.telemetry_document(), sort_keys=True
                    ).encode()
                    self._reply(200, "application/json", body)
                elif self.path == "/healthz":
                    if server.watchdog is not None and server.watchdog.paging:
                        self._reply(503, "text/plain", b"paging\n")
                    else:
                        self._reply(200, "text/plain", b"ok\n")
                elif self.path.startswith("/trace/"):
                    document = server.trace_document(
                        self.path[len("/trace/"):]
                    )
                    if document is None:
                        self._reply(404, "text/plain", b"no such trace\n")
                    else:
                        body = json.dumps(document, sort_keys=True).encode()
                        self._reply(200, "application/json", body)
                else:
                    self._reply(404, "text/plain", b"not found\n")

            def _reply(self, status: int, ctype: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # scrapes stay quiet
                return None

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread: "Optional[threading.Thread]" = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def telemetry_document(self) -> "Dict[str, object]":
        """The windowed JSON view served at ``/telemetry``.

        Histogram window summaries carry tail ``exemplars`` — resolve a
        ``trace_id`` via ``GET /trace/<id>``.  With a watchdog attached
        the document gains an ``slo`` section; with a trace store, a
        ``traces`` retention summary.
        """
        document: "Dict[str, object]" = {"windows": {}}
        if self.timeseries is not None:
            document["windows"] = {
                str(seconds): snapshot.as_dict()
                for seconds, snapshot in
                self.timeseries.windows(DEFAULT_WINDOWS).items()
            }
        if self.watchdog is not None:
            document["slo"] = self.watchdog.status()
        if self.tracestore is not None:
            document["traces"] = {
                "stored": len(self.tracestore),
                "added": self.tracestore.added,
                "dropped": self.tracestore.dropped,
            }
        return document

    def trace_document(self, trace_id: str) -> "Optional[Dict[str, object]]":
        """One stored trace as JSON, or ``None`` if unknown."""
        if self.tracestore is None:
            return None
        trace = self.tracestore.get(trace_id)
        if trace is None:
            return None
        from .export import span_to_dict
        from .tracestore import critical_path

        document = trace.as_dict()
        document["critical_path"] = critical_path(
            trace, self.tracestore
        ).as_dict()
        document["root"] = span_to_dict(trace.root)
        return document

    def start(self) -> "MetricsServer":
        """Serve scrapes on a daemon thread; returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
