"""Span-based tracing of builds and queries.

A *span* is one named, timed region of work — ``lp.solve``,
``query.point_query`` — with attributes and child spans.  Spans nest via
:mod:`contextvars`, so the tree mirrors the dynamic call structure even
across worker threads (each thread sees its own current-span context):

    with span("query.nearest", dim=8):
        with span("query.point_query") as s:
            ...
            s.set("pages", pages)
        with span("query.candidate_scan"):
            ...

Like :mod:`repro.obs.metrics`, tracing is off by default and the
:func:`span` helper returns a shared no-op object after one boolean
check, so instrumented hot paths stay cheap.  When enabled, finished
root spans accumulate on the installed :class:`Tracer`; exporters in
:mod:`repro.obs.export` turn them into nested JSON.

Timing uses :func:`time.perf_counter` — monotonic, so a child span's
measured duration can never exceed its parent's beyond timer resolution.
"""

from __future__ import annotations

import functools
import time
from contextvars import ContextVar
from typing import Any, Callable, Dict, List, Optional

from . import tracectx

__all__ = [
    "Span",
    "TraceCarrier",
    "Tracer",
    "span",
    "traced",
    "carrier",
    "current_span",
    "enabled",
    "enable",
    "disable",
    "get_tracer",
    "set_tracer",
    "collecting",
]


class Span:
    """One timed region: name, wall-clock window, attributes, children."""

    __slots__ = ("name", "attributes", "children", "start", "end", "_token")

    def __init__(self, name: str, attributes: "Optional[Dict[str, Any]]" = None):
        self.name = name
        # Takes ownership of `attributes` (span() hands over the fresh
        # kwargs dict) — one less per-span allocation on hot paths.
        self.attributes: "Dict[str, Any]" = (
            attributes if attributes is not None else {}
        )
        self.children: "List[Span]" = []
        self.start: float = 0.0
        self.end: float = 0.0
        self._token = None

    @property
    def duration_seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        # Spans opened while a request trace id is bound carry it, so a
        # stored trace (and its Chrome export) is self-identifying even
        # after the span tree leaves the context it was recorded in.
        if "trace_id" not in self.attributes:
            trace_id = tracectx.current_trace_id()
            if trace_id is not None:
                self.attributes["trace_id"] = trace_id
        self._token = _current.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.end = time.perf_counter()
        _current.reset(self._token)
        self._token = None
        # Attach to the enclosing span, current again after the reset;
        # root spans go to the installed tracer.
        enclosing = _current.get()
        if enclosing is not None:
            enclosing.children.append(self)
        elif _tracer is not None:
            _tracer.add(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1e3:.3f} ms,"
            f" {len(self.children)} children)"
        )


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


_NOOP = _NoopSpan()


class Tracer:
    """Collects finished root spans for one enablement scope."""

    def __init__(self):
        self.spans: "List[Span]" = []

    def add(self, finished: Span) -> None:
        self.spans.append(finished)

    def clear(self) -> None:
        self.spans.clear()

    def find(self, name: str) -> "List[Span]":
        """All spans with ``name`` anywhere in the collected trees."""
        found: "List[Span]" = []
        stack = list(self.spans)
        while stack:
            node = stack.pop()
            if node.name == name:
                found.append(node)
            stack.extend(node.children)
        return found


# ======================================================================
# Module state
# ======================================================================

_current: "ContextVar[Optional[Span]]" = ContextVar(
    "repro_current_span", default=None
)
_enabled = False
_tracer: "Optional[Tracer]" = None


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def enable(tracer: "Optional[Tracer]" = None) -> Tracer:
    """Start recording spans onto ``tracer`` (a fresh one by default).

    The identity check matters: an *empty* sink (a fresh
    :class:`~repro.obs.tracestore.TraceStore` has ``len() == 0`` and is
    falsy) must still be installed.
    """
    global _enabled, _tracer
    if tracer is not None:
        _tracer = tracer
    elif _tracer is None:
        _tracer = Tracer()
    _enabled = True
    return _tracer


def disable() -> None:
    """Stop recording; the installed tracer keeps its collected spans."""
    global _enabled
    _enabled = False


def get_tracer() -> "Optional[Tracer]":
    """The installed tracer, or ``None`` if tracing never started."""
    return _tracer


def set_tracer(tracer: "Optional[Tracer]") -> None:
    """Install (or clear) the root-span sink without touching enablement.

    Any object with an ``add(span)`` method works — the serving layer
    installs a :class:`~repro.obs.tracestore.TraceStore` here so root
    spans flow into the tail-sampled store instead of an unbounded list.
    """
    global _tracer
    _tracer = tracer


def span(name: str, **attributes: Any):
    """Open a traced region; usable as a context manager.

    Returns the shared no-op span when tracing is disabled, so call
    sites never need their own enablement checks.
    """
    if not _enabled:
        return _NOOP
    return Span(name, attributes)


def current_span():
    """The innermost open span, or a no-op stand-in when disabled."""
    if not _enabled:
        return _NOOP
    active = _current.get()
    return active if active is not None else _NOOP


def traced(name: "Optional[str]" = None) -> "Callable":
    """Decorator form: trace every call of the wrapped function."""

    def decorate(func: "Callable") -> "Callable":
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return func(*args, **kwargs)
            with Span(span_name):
                return func(*args, **kwargs)

        return wrapper

    return decorate


class TraceCarrier:
    """Captured span/trace context, re-enterable on another thread.

    Executor workers run in their own :mod:`contextvars` context, so
    spans they open would become unrelated roots (see
    ``test_threads_get_independent_span_stacks``).  A carrier captures
    the *submitting* side's current span and trace id; the worker wraps
    its work in :meth:`attached` and everything it opens nests under the
    submitting span and carries the submitting request's trace id —
    parity with the serial span tree.

    Child-list appends from several workers interleave safely
    (``list.append`` is atomic under the GIL); ordering among sibling
    worker spans is completion order, as with any concurrent trace.
    """

    __slots__ = ("parent", "trace_id")

    def __init__(self):
        self.parent: "Optional[Span]" = _current.get() if _enabled else None
        self.trace_id = tracectx.current_trace_id()

    def attached(self):
        """Context manager binding the captured context on this thread."""
        return _CarrierScope(self)

    def call(self, fn: "Callable", *args: Any, **kwargs: Any):
        """Run ``fn`` under the captured context (executor-friendly)."""
        with self.attached():
            return fn(*args, **kwargs)


class _CarrierScope:
    __slots__ = ("_carrier", "_span_token", "_ctx")

    def __init__(self, carrier: TraceCarrier):
        self._carrier = carrier
        self._span_token = None
        self._ctx = None

    def __enter__(self) -> None:
        if self._carrier.parent is not None:
            self._span_token = _current.set(self._carrier.parent)
        self._ctx = tracectx.bind(self._carrier.trace_id)
        self._ctx.__enter__()

    def __exit__(self, *exc_info) -> None:
        self._ctx.__exit__(*exc_info)
        if self._span_token is not None:
            _current.reset(self._span_token)
            self._span_token = None


def carrier() -> TraceCarrier:
    """Capture the calling context for re-entry on a worker thread."""
    return TraceCarrier()


class collecting:
    """Context manager: record spans for a block onto a fresh tracer.

    Restores the previous enablement state and tracer on exit::

        with tracing.collecting() as tracer:
            index.nearest(q)
        root = tracer.spans[0]
    """

    def __init__(self):
        self.tracer = Tracer()
        self._prev_enabled = False
        self._prev_tracer: "Optional[Tracer]" = None

    def __enter__(self) -> Tracer:
        global _enabled, _tracer
        self._prev_enabled = _enabled
        self._prev_tracer = _tracer
        _tracer = self.tracer
        _enabled = True
        return self.tracer

    def __exit__(self, *exc_info) -> None:
        global _enabled, _tracer
        _enabled = self._prev_enabled
        _tracer = self._prev_tracer
