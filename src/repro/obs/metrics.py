"""Process-wide metrics registry: counters, gauges and histograms.

The paper's whole argument is a cost decomposition — CPU work vs. page
accesses (Figures 9/12) — so every layer of this codebase emits the
quantities that decomposition is made of: LP solves and pivots, candidate
counts, decomposition fan-out, page reads, cache hits, node visits.  This
module is the sink for those events.

Design constraints, in order:

1. **Cheap when disabled.**  Instrumentation is off by default; every
   hot-path helper (:func:`inc`, :func:`observe`, :func:`set_gauge`)
   checks one module-level boolean and returns immediately, so a page
   read or an LP solve pays a single function call.  The benchmark gate
   is < 3% query-throughput overhead with metrics disabled.
2. **Thread-safe when enabled.**  Counter increments and histogram
   observations from parallel workers (e.g. threads driving
   :mod:`repro.index.parallel` searches) are serialised by one registry
   lock; ``n`` threads adding ``k`` events each always total ``n * k``.
3. **Snapshot/delta friendly.**  The evaluation harness brackets a query
   workload with :meth:`MetricsRegistry.snapshot` /
   :meth:`MetricsRegistry.delta_since` to attribute counter traffic to
   that workload, the same way :class:`repro.storage.page.AccessStats`
   is snapshotted around a single query.

Metric names are dot-separated, lowest-level subsystem first
(``lp.solves``, ``storage.cache.hits``, ``query.candidates``); the full
taxonomy is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import math
import random
import re
import threading
import zlib
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # avoid a runtime import cycle with the sink module
    from .timeseries import TimeSeries

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MAX_LABEL_SETS",
    "MetricsRegistry",
    "base_name",
    "enabled",
    "enable",
    "disable",
    "get_registry",
    "inc",
    "labeled",
    "parse_labeled",
    "set_gauge",
    "observe",
    "snapshot",
    "sum_labeled",
    "delta_since",
    "collecting",
    "install_timeseries",
    "uninstall_timeseries",
    "get_timeseries",
]

#: Histograms keep exact count/sum/min/max forever but cap the stored
#: sample list, so month-long processes cannot grow without bound.
#: Past the cap, reservoir sampling keeps the stored list a uniform
#: sample of *everything* observed, so long-run percentiles do not
#: freeze on the warm-up distribution.
HISTOGRAM_SAMPLE_CAP = 65_536

#: Default ceiling on distinct label sets per base metric name.  Labels
#: are for *bounded* dimensions (shard id, pipeline stage, outcome); an
#: unbounded dimension (query id, user id) would grow the registry and
#: the ``/metrics`` payload without limit, so crossing the cap raises
#: :class:`LabelCardinalityError` instead of silently registering.
MAX_LABEL_SETS = 64


class LabelCardinalityError(RuntimeError):
    """A metric exceeded the allowed number of distinct label sets."""

    def __init__(self, base: str, cap: int):
        super().__init__(
            f"metric {base!r} exceeded the cardinality cap of {cap}"
            f" distinct label sets; label values must come from a"
            f" bounded domain"
        )
        self.base = base
        self.cap = cap


# ----------------------------------------------------------------------
# Canonical labeled keys
# ----------------------------------------------------------------------
#
# A labeled metric is stored under one canonical string key:
# ``base{k="v",...}`` with label names sorted and values escaped the
# way the Prometheus text format escapes them ("\\", "\"", "\n").  The
# key keeps the dotted base name as its prefix, so prefix-based sinks
# (the time-series ring tracks ``serve.``/``query.``/``shard.``) see
# labeled children without any special casing.

_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: "List[str]" = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep both characters
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def labeled(name: str, **labels: object) -> str:
    """The canonical registry key for ``name`` with ``labels`` attached.

    Label names must match ``[a-zA-Z_][a-zA-Z0-9_]*``; values are
    stringified and escaped.  With no labels the plain name is returned,
    so call sites can attach labels unconditionally.  Keys for static
    label sets should be built once at import time — this function is
    not on the disabled fast path, but it is not free either.
    """
    if not labels:
        return name
    if "{" in name:
        raise ValueError(f"base metric name may not contain '{{': {name!r}")
    parts = []
    for key in sorted(labels):
        if not _LABEL_NAME.match(key):
            raise ValueError(f"invalid label name: {key!r}")
        parts.append(f'{key}="{_escape_label_value(labels[key])}"')
    return f"{name}{{{','.join(parts)}}}"


def base_name(key: str) -> str:
    """The base metric name of a (possibly labeled) canonical key."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def sum_labeled(flat: "Dict[str, float]", base: str) -> float:
    """Sum of ``base`` across all its label sets in a flat mapping.

    Accepts the shapes :meth:`MetricsRegistry.snapshot` and
    :meth:`MetricsRegistry.delta_since` return: the unlabeled sample
    plus every ``base{...}`` child contribute.
    """
    total = flat.get(base, 0.0)
    prefix = base + "{"
    for key, value in flat.items():
        if key.startswith(prefix):
            total += value
    return total


def parse_labeled(key: str) -> "Tuple[str, Dict[str, str]]":
    """Split a canonical key into ``(base, labels)``.

    The inverse of :func:`labeled` — quote- and escape-aware, so label
    values containing ``,``, ``}``, ``"`` or ``\\n`` round-trip.  Raises
    ``ValueError`` on a malformed key.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed labeled key: {key!r}")
    base = key[:brace]
    body = key[brace + 1 : -1]
    labels: "Dict[str, str]" = {}
    i = 0
    n = len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            raise ValueError(f"malformed label pair in key: {key!r}")
        label = body[i:eq]
        if not _LABEL_NAME.match(label):
            raise ValueError(f"invalid label name {label!r} in {key!r}")
        if eq + 1 >= n or body[eq + 1] != '"':
            raise ValueError(f"unquoted label value in key: {key!r}")
        j = eq + 2
        raw: "List[str]" = []
        while j < n:
            ch = body[j]
            if ch == "\\" and j + 1 < n:
                raw.append(body[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated label value in key: {key!r}")
        labels[label] = _unescape_label_value("".join(raw))
        j += 1  # closing quote
        if j < n:
            if body[j] != ",":
                raise ValueError(f"malformed label separator in {key!r}")
            j += 1
        i = j
    return base, labels


class Counter:
    """A monotonically increasing sum of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value (buffer occupancy, tree height, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of observed values.

    Count, sum, min and max are exact; percentiles are computed from a
    stored sample capped at :data:`HISTOGRAM_SAMPLE_CAP` observations.
    Past the cap the sample is maintained by *reservoir sampling*
    (Vitter's Algorithm R with a per-histogram seeded RNG, so runs are
    reproducible): every observation — early or late — has an equal
    chance of being represented, which keeps long-running percentiles
    honest instead of frozen on the first 65 536 warm-up values.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_rng")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: "List[float]" = []
        # Deterministic per-name seed: reproducible independent of
        # creation order and of Python's randomized str hashing.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(value)
        else:
            # Algorithm R: the i-th observation replaces a random slot
            # with probability cap/i, leaving a uniform sample.
            j = self._rng.randrange(self.count)
            if j < len(self._samples):
                self._samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile of the stored sample, ``q`` in
        [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        pos = (len(ordered) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> "Dict[str, float]":
        """The exported aggregate view of this histogram."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    All mutating operations take the registry lock, so a registry can be
    shared by worker threads.  Metric objects are created on first use
    and live for the registry's lifetime.
    """

    def __init__(self, max_label_sets: int = MAX_LABEL_SETS):
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self._lock = threading.Lock()
        self._counters: "Dict[str, Counter]" = {}
        self._gauges: "Dict[str, Gauge]" = {}
        self._histograms: "Dict[str, Histogram]" = {}
        self._name_validator: "Optional[Callable[[str], None]]" = None
        self.max_label_sets = int(max_label_sets)
        #: base name -> canonical labeled keys registered under it.
        self._label_keys: "Dict[str, set]" = {}

    def set_name_validator(
        self, validator: "Optional[Callable[[str], None]]"
    ) -> None:
        """Apply ``validator`` to every *new* metric name at creation.

        The validator sees the *base* name (labels stripped); it raises
        to reject a name, and nothing is registered in that case.
        Existing names are re-checked immediately, so installing the
        exposition-grammar validator
        (:func:`repro.obs.promexport.validate_metric_name`) on a live
        registry surfaces an unscrapeable name at install time rather
        than at scrape time.
        """
        with self._lock:
            if validator is not None:
                for name in (
                    list(self._counters) + list(self._gauges)
                    + list(self._histograms)
                ):
                    validator(base_name(name))
            self._name_validator = validator

    def _admit(self, name: str) -> None:
        """Gate a *new* canonical key: base-name validation, then the
        per-base cardinality cap for labeled keys.  Lock held."""
        base = base_name(name)
        if self._name_validator is not None:
            self._name_validator(base)
        if base != name:  # labeled key
            parse_labeled(name)  # reject malformed hand-built keys
            keys = self._label_keys.setdefault(base, set())
            if name not in keys:
                if len(keys) >= self.max_label_sets:
                    raise LabelCardinalityError(base, self.max_label_sets)
                keys.add(name)

    # ------------------------------------------------------------------
    # Metric access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._admit(name)
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._admit(name)
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._admit(name)
                metric = self._histograms[name] = Histogram(name)
            return metric

    # ------------------------------------------------------------------
    # Recording (one lock round-trip per event)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._admit(name)
                metric = self._counters[name] = Counter(name)
            metric.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._admit(name)
                metric = self._gauges[name] = Gauge(name)
            metric.set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._admit(name)
                metric = self._histograms[name] = Histogram(name)
            metric.observe(value)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "Dict[str, float]":
        """Flat ``name -> value`` view of every cumulative quantity.

        Counters appear under their own name; histograms contribute
        ``<name>.count`` and ``<name>.sum`` (the cumulative components a
        delta is meaningful for).  Gauges are excluded — they are not
        cumulative.
        """
        with self._lock:
            flat: "Dict[str, float]" = {
                name: c.value for name, c in self._counters.items()
            }
            for name, h in self._histograms.items():
                flat[f"{name}.count"] = float(h.count)
                flat[f"{name}.sum"] = h.total
            return flat

    def delta_since(self, earlier: "Dict[str, float]") -> "Dict[str, float]":
        """Non-zero counter/histogram increments since ``earlier``."""
        now = self.snapshot()
        delta = {}
        for name, value in now.items():
            change = value - earlier.get(name, 0.0)
            if change != 0.0:
                delta[name] = change
        return delta

    def as_dict(self) -> "Dict[str, object]":
        """Structured export view (used by :mod:`repro.obs.export`)."""
        with self._lock:
            return {
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value
                    for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop every metric (tests and per-run profiling)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._label_keys.clear()

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )


# ======================================================================
# Module-level fast path
# ======================================================================

_enabled = False
_registry = MetricsRegistry()
_timeseries: "Optional[TimeSeries]" = None


def enabled() -> bool:
    """Whether instrumentation events are currently being recorded."""
    return _enabled


def enable() -> MetricsRegistry:
    """Turn recording on; returns the process-wide registry."""
    global _enabled
    _enabled = True
    return _registry


def disable() -> None:
    """Turn recording off (the registry keeps its accumulated values)."""
    global _enabled
    _enabled = False


def get_registry() -> MetricsRegistry:
    """The process-wide registry (whether or not recording is on)."""
    return _registry


def install_timeseries(ts: "TimeSeries") -> "TimeSeries":
    """Mirror every *enabled* metric event into a sliding-window ring.

    The :class:`~repro.obs.timeseries.TimeSeries` filters by name
    prefix, so hot paths it does not track pay one attribute load plus
    one ``tracks`` check.  The disabled fast path is untouched: with
    metrics off, no event reaches the sink at all.
    """
    global _timeseries
    _timeseries = ts
    return ts


def uninstall_timeseries() -> None:
    """Stop mirroring metric events into the time-series ring."""
    global _timeseries
    _timeseries = None


def get_timeseries() -> "Optional[TimeSeries]":
    """The installed time-series sink, or ``None``."""
    return _timeseries


def inc(name: str, amount: float = 1.0) -> None:
    """Hot-path counter increment; no-op unless metrics are enabled."""
    if not _enabled:
        return
    _registry.inc(name, amount)
    ts = _timeseries
    if ts is not None:
        ts.add(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Hot-path gauge update; no-op unless metrics are enabled."""
    if not _enabled:
        return
    _registry.set_gauge(name, value)
    ts = _timeseries
    if ts is not None:
        ts.set_gauge(name, value)


def observe(
    name: str, value: float, trace_id: "Optional[str]" = None
) -> None:
    """Hot-path histogram observation; no-op unless metrics are enabled.

    ``trace_id`` tags the observation in the windowed sink so tail
    percentiles keep exemplar links to stored traces; the cumulative
    histogram ignores it.
    """
    if not _enabled:
        return
    _registry.observe(name, value)
    ts = _timeseries
    if ts is not None:
        ts.observe(name, value, trace_id)


def snapshot() -> "Dict[str, float]":
    """Snapshot of the process-wide registry (see the registry method)."""
    return _registry.snapshot()


def delta_since(earlier: "Dict[str, float]") -> "Dict[str, float]":
    """Delta of the process-wide registry since ``earlier``."""
    return _registry.delta_since(earlier)


@contextmanager
def collecting(fresh: bool = False) -> "Iterator[MetricsRegistry]":
    """Enable metrics for a ``with`` block, restoring the previous state.

    ``fresh=True`` additionally clears the registry on entry, so the
    block observes only its own events without snapshot arithmetic.
    Reentrant: nesting inside an already-enabled scope leaves recording
    on afterwards.
    """
    was_enabled = _enabled
    if fresh:
        _registry.reset()
    enable()
    try:
        yield _registry
    finally:
        if not was_enabled:
            disable()
