"""Process-wide metrics registry: counters, gauges and histograms.

The paper's whole argument is a cost decomposition — CPU work vs. page
accesses (Figures 9/12) — so every layer of this codebase emits the
quantities that decomposition is made of: LP solves and pivots, candidate
counts, decomposition fan-out, page reads, cache hits, node visits.  This
module is the sink for those events.

Design constraints, in order:

1. **Cheap when disabled.**  Instrumentation is off by default; every
   hot-path helper (:func:`inc`, :func:`observe`, :func:`set_gauge`)
   checks one module-level boolean and returns immediately, so a page
   read or an LP solve pays a single function call.  The benchmark gate
   is < 3% query-throughput overhead with metrics disabled.
2. **Thread-safe when enabled.**  Counter increments and histogram
   observations from parallel workers (e.g. threads driving
   :mod:`repro.index.parallel` searches) are serialised by one registry
   lock; ``n`` threads adding ``k`` events each always total ``n * k``.
3. **Snapshot/delta friendly.**  The evaluation harness brackets a query
   workload with :meth:`MetricsRegistry.snapshot` /
   :meth:`MetricsRegistry.delta_since` to attribute counter traffic to
   that workload, the same way :class:`repro.storage.page.AccessStats`
   is snapshotted around a single query.

Metric names are dot-separated, lowest-level subsystem first
(``lp.solves``, ``storage.cache.hits``, ``query.candidates``); the full
taxonomy is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

if TYPE_CHECKING:  # avoid a runtime import cycle with the sink module
    from .timeseries import TimeSeries

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "enable",
    "disable",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "delta_since",
    "collecting",
    "install_timeseries",
    "uninstall_timeseries",
    "get_timeseries",
]

#: Histograms keep exact count/sum/min/max forever but cap the stored
#: sample list, so month-long processes cannot grow without bound.
#: Past the cap, reservoir sampling keeps the stored list a uniform
#: sample of *everything* observed, so long-run percentiles do not
#: freeze on the warm-up distribution.
HISTOGRAM_SAMPLE_CAP = 65_536


class Counter:
    """A monotonically increasing sum of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value (buffer occupancy, tree height, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of observed values.

    Count, sum, min and max are exact; percentiles are computed from a
    stored sample capped at :data:`HISTOGRAM_SAMPLE_CAP` observations.
    Past the cap the sample is maintained by *reservoir sampling*
    (Vitter's Algorithm R with a per-histogram seeded RNG, so runs are
    reproducible): every observation — early or late — has an equal
    chance of being represented, which keeps long-running percentiles
    honest instead of frozen on the first 65 536 warm-up values.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_rng")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: "List[float]" = []
        # Deterministic per-name seed: reproducible independent of
        # creation order and of Python's randomized str hashing.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(value)
        else:
            # Algorithm R: the i-th observation replaces a random slot
            # with probability cap/i, leaving a uniform sample.
            j = self._rng.randrange(self.count)
            if j < len(self._samples):
                self._samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile of the stored sample, ``q`` in
        [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        pos = (len(ordered) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> "Dict[str, float]":
        """The exported aggregate view of this histogram."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    All mutating operations take the registry lock, so a registry can be
    shared by worker threads.  Metric objects are created on first use
    and live for the registry's lifetime.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: "Dict[str, Counter]" = {}
        self._gauges: "Dict[str, Gauge]" = {}
        self._histograms: "Dict[str, Histogram]" = {}
        self._name_validator: "Optional[Callable[[str], None]]" = None

    def set_name_validator(
        self, validator: "Optional[Callable[[str], None]]"
    ) -> None:
        """Apply ``validator`` to every *new* metric name at creation.

        The validator raises to reject a name; nothing is registered in
        that case.  Existing names are re-checked immediately, so
        installing the exposition-grammar validator
        (:func:`repro.obs.promexport.validate_metric_name`) on a live
        registry surfaces an unscrapeable name at install time rather
        than at scrape time.
        """
        with self._lock:
            if validator is not None:
                for name in (
                    list(self._counters) + list(self._gauges)
                    + list(self._histograms)
                ):
                    validator(name)
            self._name_validator = validator

    # ------------------------------------------------------------------
    # Metric access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                if self._name_validator is not None:
                    self._name_validator(name)
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                if self._name_validator is not None:
                    self._name_validator(name)
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                if self._name_validator is not None:
                    self._name_validator(name)
                metric = self._histograms[name] = Histogram(name)
            return metric

    # ------------------------------------------------------------------
    # Recording (one lock round-trip per event)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                if self._name_validator is not None:
                    self._name_validator(name)
                metric = self._counters[name] = Counter(name)
            metric.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                if self._name_validator is not None:
                    self._name_validator(name)
                metric = self._gauges[name] = Gauge(name)
            metric.set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                if self._name_validator is not None:
                    self._name_validator(name)
                metric = self._histograms[name] = Histogram(name)
            metric.observe(value)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "Dict[str, float]":
        """Flat ``name -> value`` view of every cumulative quantity.

        Counters appear under their own name; histograms contribute
        ``<name>.count`` and ``<name>.sum`` (the cumulative components a
        delta is meaningful for).  Gauges are excluded — they are not
        cumulative.
        """
        with self._lock:
            flat: "Dict[str, float]" = {
                name: c.value for name, c in self._counters.items()
            }
            for name, h in self._histograms.items():
                flat[f"{name}.count"] = float(h.count)
                flat[f"{name}.sum"] = h.total
            return flat

    def delta_since(self, earlier: "Dict[str, float]") -> "Dict[str, float]":
        """Non-zero counter/histogram increments since ``earlier``."""
        now = self.snapshot()
        delta = {}
        for name, value in now.items():
            change = value - earlier.get(name, 0.0)
            if change != 0.0:
                delta[name] = change
        return delta

    def as_dict(self) -> "Dict[str, object]":
        """Structured export view (used by :mod:`repro.obs.export`)."""
        with self._lock:
            return {
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value
                    for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop every metric (tests and per-run profiling)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )


# ======================================================================
# Module-level fast path
# ======================================================================

_enabled = False
_registry = MetricsRegistry()
_timeseries: "Optional[TimeSeries]" = None


def enabled() -> bool:
    """Whether instrumentation events are currently being recorded."""
    return _enabled


def enable() -> MetricsRegistry:
    """Turn recording on; returns the process-wide registry."""
    global _enabled
    _enabled = True
    return _registry


def disable() -> None:
    """Turn recording off (the registry keeps its accumulated values)."""
    global _enabled
    _enabled = False


def get_registry() -> MetricsRegistry:
    """The process-wide registry (whether or not recording is on)."""
    return _registry


def install_timeseries(ts: "TimeSeries") -> "TimeSeries":
    """Mirror every *enabled* metric event into a sliding-window ring.

    The :class:`~repro.obs.timeseries.TimeSeries` filters by name
    prefix, so hot paths it does not track pay one attribute load plus
    one ``tracks`` check.  The disabled fast path is untouched: with
    metrics off, no event reaches the sink at all.
    """
    global _timeseries
    _timeseries = ts
    return ts


def uninstall_timeseries() -> None:
    """Stop mirroring metric events into the time-series ring."""
    global _timeseries
    _timeseries = None


def get_timeseries() -> "Optional[TimeSeries]":
    """The installed time-series sink, or ``None``."""
    return _timeseries


def inc(name: str, amount: float = 1.0) -> None:
    """Hot-path counter increment; no-op unless metrics are enabled."""
    if not _enabled:
        return
    _registry.inc(name, amount)
    ts = _timeseries
    if ts is not None:
        ts.add(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Hot-path gauge update; no-op unless metrics are enabled."""
    if not _enabled:
        return
    _registry.set_gauge(name, value)
    ts = _timeseries
    if ts is not None:
        ts.set_gauge(name, value)


def observe(
    name: str, value: float, trace_id: "Optional[str]" = None
) -> None:
    """Hot-path histogram observation; no-op unless metrics are enabled.

    ``trace_id`` tags the observation in the windowed sink so tail
    percentiles keep exemplar links to stored traces; the cumulative
    histogram ignores it.
    """
    if not _enabled:
        return
    _registry.observe(name, value)
    ts = _timeseries
    if ts is not None:
        ts.observe(name, value, trace_id)


def snapshot() -> "Dict[str, float]":
    """Snapshot of the process-wide registry (see the registry method)."""
    return _registry.snapshot()


def delta_since(earlier: "Dict[str, float]") -> "Dict[str, float]":
    """Delta of the process-wide registry since ``earlier``."""
    return _registry.delta_since(earlier)


@contextmanager
def collecting(fresh: bool = False) -> "Iterator[MetricsRegistry]":
    """Enable metrics for a ``with`` block, restoring the previous state.

    ``fresh=True`` additionally clears the registry on entry, so the
    block observes only its own events without snapshot arithmetic.
    Reentrant: nesting inside an already-enabled scope leaves recording
    on afterwards.
    """
    was_enabled = _enabled
    if fresh:
        _registry.reset()
    enable()
    try:
        yield _registry
    finally:
        if not was_enabled:
            disable()
