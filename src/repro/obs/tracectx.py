"""Request-scoped trace identity, propagated via :mod:`contextvars`.

The serving layer interleaves many callers' queries through micro-batch
flushes, worker pools and a fallback ladder, so no single span tree
explains one slow response any more.  A *trace id* restores the missing
causality: it is minted once at serve admission (or at the top of any
CLI workflow), bound to the executing context, and from there it rides
along automatically —

* every :class:`~repro.obs.tracing.Span` opened while an id is bound is
  stamped with a ``trace_id`` attribute;
* every :mod:`repro.obs.events` record emitted while an id is bound
  carries a ``trace_id`` field, making the event log joinable with the
  trace store;
* the serve JSONL protocol echoes the id on every response (success or
  typed error), so a client can hand it straight back to
  ``GET /trace/<id>`` or ``repro trace show``.

Binding uses a :class:`~contextvars.ContextVar`, so concurrent threads
hold independent trace identities and nested binds restore the outer id
on exit.  Crossing an executor boundary needs one explicit step — the
submitting side captures its context and the worker re-enters it (see
:func:`repro.obs.tracing.carrier`); :mod:`repro.engine.parallel` does
this for its thread pools.

Minting an id costs one 64-bit read of the process RNG and never
allocates beyond the 16-char hex string, so the service mints
unconditionally — tracing being off only skips the *recording*, not the
identity.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

__all__ = [
    "bind",
    "current_trace_id",
    "new_trace_id",
]

# Process-wide id source.  Seeded from urandom (the default), guarded by
# a lock because random.Random instances are not documented thread-safe
# and submissions race in from many client threads.
_rng = random.Random()
_rng_lock = threading.Lock()

_current: "ContextVar[Optional[str]]" = ContextVar(
    "repro_current_trace", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    with _rng_lock:
        return f"{_rng.getrandbits(64):016x}"


def current_trace_id() -> "Optional[str]":
    """The trace id bound to the calling context, or ``None``."""
    return _current.get()


@contextmanager
def bind(trace_id: "Optional[str]") -> "Iterator[Optional[str]]":
    """Bind ``trace_id`` for the duration of the ``with`` block.

    Nested binds shadow and restore; ``bind(None)`` explicitly clears
    the identity for the block (useful around work that must not be
    attributed to the enclosing request).
    """
    token = _current.set(trace_id)
    try:
        yield trace_id
    finally:
        _current.reset(token)
