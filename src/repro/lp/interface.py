"""Backend-neutral LP front-end.

Two interchangeable exact solvers are offered:

* ``"simplex"`` — the from-scratch tableau simplex in
  :mod:`repro.lp.simplex` (mirrors the paper's Dantzig / Best–Ritter
  substrate; fastest on the tiny constraint sets produced by the optimised
  selectors);
* ``"scipy"`` — ``scipy.optimize.linprog`` with the HiGHS solver (fastest
  on large *Correct*-selector systems).

``"auto"`` picks by problem size.  The default backend is process-global
and can be overridden per call or via :func:`set_default_backend` — the
benchmark harness uses that to compare backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs import metrics
from .simplex import SimplexResult, simplex_maximize

__all__ = [
    "LPResult",
    "maximize",
    "minimize",
    "set_default_backend",
    "get_default_backend",
    "BACKENDS",
]

BACKENDS = ("auto", "simplex", "scipy")

# Above this many constraint rows, HiGHS beats the pure-Python tableau.
_AUTO_SCIPY_THRESHOLD = 60

_default_backend = "auto"


@dataclass(frozen=True)
class LPResult:
    """Solver-independent LP outcome."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    x: Optional[np.ndarray]
    objective: float

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def set_default_backend(backend: str) -> None:
    """Set the process-wide default LP backend."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    global _default_backend
    _default_backend = backend


def get_default_backend() -> str:
    """The process-wide default LP backend."""
    return _default_backend


def maximize(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    backend: "str | None" = None,
) -> LPResult:
    """Maximize ``c . x`` s.t. ``a_ub x <= b_ub``, ``lb <= x <= ub``."""
    chosen = backend or _default_backend
    if chosen not in BACKENDS:
        raise ValueError(f"unknown backend {chosen!r}; expected one of {BACKENDS}")
    if chosen == "auto":
        chosen = (
            "scipy"
            if np.asarray(a_ub).shape[0] >= _AUTO_SCIPY_THRESHOLD
            else "simplex"
        )
    metrics.inc("lp.solves")
    metrics.inc(f"lp.backend.{chosen}")
    metrics.inc("lp.constraint_rows", np.asarray(a_ub).shape[0])
    if chosen == "simplex":
        result = _from_simplex(simplex_maximize(c, a_ub, b_ub, lb, ub))
    else:
        result = _scipy_maximize(c, a_ub, b_ub, lb, ub)
    if result.status == "infeasible":
        metrics.inc("lp.infeasible")
    return result


def minimize(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    backend: "str | None" = None,
) -> LPResult:
    """Minimize ``c . x`` under the same constraint shape as :func:`maximize`."""
    result = maximize(-np.asarray(c, dtype=np.float64), a_ub, b_ub, lb, ub,
                      backend=backend)
    if not result.is_optimal:
        return result
    return LPResult("optimal", result.x, -result.objective)


def _from_simplex(res: SimplexResult) -> LPResult:
    return LPResult(res.status, res.x, res.objective)


def _scipy_maximize(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> LPResult:
    from scipy.optimize import linprog

    c = np.asarray(c, dtype=np.float64)
    a_ub = np.asarray(a_ub, dtype=np.float64)
    b_ub = np.asarray(b_ub, dtype=np.float64)
    bounds = list(zip(np.asarray(lb, dtype=np.float64),
                      np.asarray(ub, dtype=np.float64)))
    res = linprog(
        -c,
        A_ub=a_ub if a_ub.shape[0] else None,
        b_ub=b_ub if a_ub.shape[0] else None,
        bounds=bounds,
        method="highs",
    )
    if res.status == 0:
        x = np.clip(res.x, [b[0] for b in bounds], [b[1] for b in bounds])
        return LPResult("optimal", x, float(np.dot(c, x)))
    if res.status == 2:
        return LPResult("infeasible", None, float("nan"))
    if res.status == 3:
        return LPResult("unbounded", None, float("nan"))
    raise RuntimeError(f"scipy linprog failed: {res.message}")  # pragma: no cover
