"""Dense two-phase tableau simplex, written from scratch.

The paper computes each NN-cell approximation by ``2d`` linear programs
("determining the approximation of a Voronoi cell can be seen as a typical
linear programming problem", Section 2) and cites Dantzig's simplex method
and the Best & Ritter active-set variant.  We reproduce that substrate with
a classic dense tableau simplex:

* problem form: maximize ``c . x`` subject to ``A x <= b`` and box bounds
  ``lb <= x <= ub`` (exactly the shape of an MBR-extent LP over bisector
  constraints clipped to the data space);
* the box is translated so variables are non-negative and the upper bounds
  become ordinary rows, giving the standard form ``max c.y, A' y <= b',
  y >= 0``;
* phase 1 introduces artificial variables only for rows with a negative
  right-hand side and drives their sum to zero (detecting infeasibility —
  needed by the decomposition step, where a sub-box may miss the cell);
* Bland's anti-cycling rule guarantees termination; a Dantzig-rule fast
  path is used for the first iterations because it is almost always faster
  on non-degenerate inputs.

The solver is exact in the floating-point sense and deliberately simple —
problems in this system have tens of rows and at most a few dozen columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs import metrics

__all__ = ["SimplexResult", "simplex_maximize", "SimplexError"]

_EPS = 1e-9
_MAX_ITERATIONS = 10_000
_BLAND_AFTER = 200  # switch from Dantzig to Bland after this many pivots


class SimplexError(RuntimeError):
    """Raised when the solver exceeds its iteration budget (should not
    happen with Bland's rule; kept as a hard backstop)."""


@dataclass(frozen=True)
class SimplexResult:
    """Outcome of one LP solve.

    ``status`` is one of ``"optimal"``, ``"infeasible"`` or ``"unbounded"``;
    ``x`` and ``objective`` are only meaningful for ``"optimal"``.
    """

    status: str
    x: Optional[np.ndarray]
    objective: float
    iterations: int

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def simplex_maximize(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> SimplexResult:
    """Maximize ``c . x`` subject to ``a_ub x <= b_ub`` and ``lb <= x <= ub``.

    All arguments are dense numpy arrays; ``a_ub`` may have zero rows.
    """
    c = np.asarray(c, dtype=np.float64)
    a_ub = np.asarray(a_ub, dtype=np.float64)
    b_ub = np.asarray(b_ub, dtype=np.float64)
    lb = np.asarray(lb, dtype=np.float64)
    ub = np.asarray(ub, dtype=np.float64)
    n = c.shape[0]
    if a_ub.ndim != 2 or a_ub.shape[1] != n and a_ub.shape[0] > 0:
        raise ValueError("a_ub must be an (m, n) matrix")
    if np.any(lb > ub + _EPS):
        return SimplexResult("infeasible", None, float("nan"), 0)

    # Translate x = lb + y so y >= 0, and fold upper bounds into rows.
    span = ub - lb
    b_shift = b_ub - a_ub @ lb if a_ub.shape[0] else b_ub.copy()

    # Drop all-zero rows (degenerate bisectors from duplicate points):
    # 0 <= b is vacuous when b >= 0 and infeasible otherwise.
    if a_ub.shape[0]:
        zero_rows = np.all(np.abs(a_ub) <= _EPS, axis=1)
        if np.any(zero_rows & (b_shift < -_EPS)):
            return SimplexResult("infeasible", None, float("nan"), 0)
        keep = ~zero_rows
        a_ub = a_ub[keep]
        b_shift = b_shift[keep]

    a_rows = [a_ub] if a_ub.shape[0] else []
    b_rows = [b_shift] if b_shift.shape[0] else []
    # Upper bound rows y_i <= span_i (skip infinite spans).
    finite = np.isfinite(span)
    if np.any(finite):
        eye = np.eye(n)[finite]
        a_rows.append(eye)
        b_rows.append(span[finite])
    a_full = np.vstack(a_rows) if a_rows else np.zeros((0, n))
    b_full = np.concatenate(b_rows) if b_rows else np.zeros(0)

    y, status, iterations = _solve_standard_form(c, a_full, b_full)
    metrics.inc("lp.simplex.pivots", iterations)
    if status != "optimal":
        return SimplexResult(status, None, float("nan"), iterations)
    x = lb + y
    # Clamp roundoff so downstream geometry sees in-box coordinates.
    np.clip(x, lb, ub, out=x)
    return SimplexResult("optimal", x, float(np.dot(c, x)), iterations)


def _solve_standard_form(
    c: np.ndarray, a: np.ndarray, b: np.ndarray
) -> "tuple[Optional[np.ndarray], str, int]":
    """Solve ``max c.y  s.t.  A y <= b, y >= 0`` with a two-phase tableau."""
    m, n = a.shape
    if m == 0:
        # Only non-negativity: unbounded unless c <= 0, optimum at origin.
        if np.any(c > _EPS):
            return None, "unbounded", 0
        return np.zeros(n), "optimal", 0

    neg = b < -_EPS
    n_art = int(np.sum(neg))
    n_cols = n + m + n_art  # structural + slack + artificial

    tableau = np.zeros((m + 1, n_cols + 1))
    tableau[:m, :n] = a
    tableau[:m, n:n + m] = np.eye(m)
    tableau[:m, -1] = b
    # Normalise negative rows so the RHS is non-negative, then give each an
    # artificial basis variable.
    art_col = n + m
    basis = np.arange(n, n + m)
    for i in np.flatnonzero(neg):
        tableau[i, :] *= -1.0
        tableau[i, art_col] = 1.0
        basis[i] = art_col
        art_col += 1

    total_iterations = 0
    if n_art:
        # Phase 1: minimise the sum of artificials == maximise -(sum),
        # written as the z-row ``w + sum(artificials) = 0``.
        obj = np.zeros(n_cols + 1)
        obj[n + m:n_cols] = 1.0
        tableau[m, :] = obj
        # Price out the artificial basis columns.
        for i in np.flatnonzero(neg):
            tableau[m, :] -= tableau[i, :]
        status, it = _run_simplex(tableau, basis, phase_one_cols=n_cols)
        total_iterations += it
        if status != "optimal":  # pragma: no cover - phase 1 never unbounded
            return None, status, total_iterations
        if tableau[m, -1] < -1e-7:
            return None, "infeasible", total_iterations
        _drive_out_artificials(tableau, basis, n + m, n_cols)
        # Discard artificial columns for phase 2.
        tableau = np.hstack([tableau[:, :n + m], tableau[:, -1:]])
        n_cols = n + m

    # Phase 2 objective row: reduced costs of maximising c.
    tableau[m, :] = 0.0
    tableau[m, :n] = -c
    for i, bi in enumerate(basis):
        if bi < n and abs(tableau[m, bi]) > 0.0:
            tableau[m, :] -= tableau[m, bi] * tableau[i, :]
    status, it = _run_simplex(tableau, basis, phase_one_cols=None)
    total_iterations += it
    if status != "optimal":
        return None, status, total_iterations

    y = np.zeros(n)
    for i, bi in enumerate(basis):
        if bi < n:
            y[bi] = tableau[i, -1]
    np.clip(y, 0.0, None, out=y)
    return y, "optimal", total_iterations


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    phase_one_cols: "Optional[int]",
) -> "tuple[str, int]":
    """Pivot ``tableau`` to optimality.  Mutates ``tableau`` and ``basis``.

    The objective row is the last row, stored in "reduced cost" form: the
    current solution is optimal when every entry (except the RHS) is
    >= 0 for a maximisation written as ``z - c.x = 0``.
    """
    m = tableau.shape[0] - 1
    n_cols = tableau.shape[1] - 1
    obj = tableau[m]
    for iteration in range(_MAX_ITERATIONS):
        costs = obj[:n_cols]
        if iteration < _BLAND_AFTER:
            enter = int(np.argmin(costs))
            if costs[enter] >= -_EPS:
                return "optimal", iteration
        else:
            negatives = np.flatnonzero(costs < -_EPS)
            if negatives.size == 0:
                return "optimal", iteration
            enter = int(negatives[0])  # Bland: smallest index

        col = tableau[:m, enter]
        positive = col > _EPS
        if not np.any(positive):
            return "unbounded", iteration
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[:m, -1][positive] / col[positive]
        min_ratio = np.min(ratios)
        # Bland tie-break on the leaving row: lowest basis index.
        tied = np.flatnonzero(ratios <= min_ratio + _EPS)
        leave = int(tied[np.argmin(basis[tied])])

        _pivot(tableau, leave, enter)
        basis[leave] = enter
    raise SimplexError(
        f"simplex exceeded {_MAX_ITERATIONS} iterations"
    )  # pragma: no cover


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gaussian pivot on (row, col)."""
    pivot_val = tableau[row, col]
    tableau[row, :] /= pivot_val
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row, :])
    # Re-assert exactness of the pivot column.
    tableau[:, col] = 0.0
    tableau[row, col] = 1.0


def _drive_out_artificials(
    tableau: np.ndarray, basis: np.ndarray, first_art: int, n_cols: int
) -> None:
    """Pivot any artificial variable still basic (at value 0) out of the
    basis so phase 2 can drop the artificial columns."""
    m = tableau.shape[0] - 1
    for i in range(m):
        if basis[i] < first_art:
            continue
        # Find a structural or slack column with a non-zero entry.
        row = tableau[i, :first_art]
        candidates = np.flatnonzero(np.abs(row) > _EPS)
        if candidates.size == 0:
            # Redundant row: zero it so it cannot interfere later.
            tableau[i, :] = 0.0
            basis[i] = first_art  # harmless marker; row is inert
            continue
        _pivot(tableau, i, int(candidates[0]))
        basis[i] = int(candidates[0])
