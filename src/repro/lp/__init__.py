"""Linear programming substrate (from-scratch simplex + scipy backend)."""

from .interface import (
    BACKENDS,
    LPResult,
    get_default_backend,
    maximize,
    minimize,
    set_default_backend,
)
from .simplex import SimplexError, SimplexResult, simplex_maximize

__all__ = [
    "BACKENDS",
    "LPResult",
    "SimplexError",
    "SimplexResult",
    "get_default_backend",
    "maximize",
    "minimize",
    "set_default_backend",
    "simplex_maximize",
]
