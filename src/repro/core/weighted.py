"""Weighted-metric NN-cell search (adaptable similarity extension).

The paper's group's companion work (Seidl & Kriegel, "Efficient
User-Adaptable Similarity Search") motivates *weighted* Euclidean
metrics: users re-weight feature dimensions to express what "similar"
means.  The NN-cell approach extends directly — the bisector of two
points under ``d_W(x, y)^2 = sum_i w_i (x_i - y_i)^2`` is still a
hyperplane, so cells remain convex polytopes, the LP machinery is
untouched, and Lemmas 1 and 2 hold verbatim.

:class:`WeightedNNCellIndex` is a compact static index for a fixed weight
vector: it precomputes the weighted cells (with a weighted k-nearest
constraint subset for speed — a superset approximation by Lemma 1, so
exactness is preserved), indexes the rectangles in an X-tree, and
answers queries by point query + weighted verification.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..geometry.halfspace import HalfspaceSystem, bisectors_from_points
from ..geometry.mbr import MBR
from ..index.bulk import bulk_load
from ..index.xtree import XTree
from .approximation import approximate_cell

__all__ = ["WeightedNNCellIndex", "weighted_distances"]


def weighted_distances(
    query: Sequence[float], points: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Squared weighted distances from ``query`` to each row."""
    q = np.asarray(query, dtype=np.float64)
    diff = np.asarray(points, dtype=np.float64) - q
    return (diff * diff) @ np.asarray(weights, dtype=np.float64)


class WeightedNNCellIndex:
    """Solution-space NN index under a per-dimension weighted metric."""

    def __init__(
        self,
        points: np.ndarray,
        weights: Sequence[float],
        max_constraints: "int | None" = None,
        lp_backend: "str | None" = None,
    ):
        """``max_constraints`` bounds the opponents per cell (weighted
        nearest first); ``None`` uses all of them (the Correct strategy).
        Any subset yields a superset approximation, so queries stay exact.
        """
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        n, dim = self.points.shape
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.shape != (dim,) or np.any(self.weights <= 0.0):
            raise ValueError("weights must be positive, one per dimension")
        self.dim = dim
        self.box = MBR.unit_cube(dim)
        if not all(self.box.contains_point(p, atol=1e-12) for p in self.points):
            raise ValueError("all points must lie inside the unit cube")

        self.tree = XTree(dim, leaf_entry_bytes=3 * 8 * dim + 8)
        lows, highs, owners = [], [], []
        for center in range(n):
            mbr = self._cell_mbr(center, max_constraints, lp_backend)
            lows.append(mbr.low)
            highs.append(mbr.high)
            owners.append(center)
        if n > 1:
            bulk_load(self.tree, np.stack(lows), np.stack(highs), owners)
        else:
            self.tree.insert(lows[0], highs[0], owners[0])

    def _cell_mbr(
        self,
        center: int,
        max_constraints: "int | None",
        lp_backend: "str | None",
    ) -> MBR:
        others = np.delete(np.arange(self.points.shape[0]), center)
        if max_constraints is not None and others.size > max_constraints:
            dist = weighted_distances(
                self.points[center], self.points[others], self.weights
            )
            others = others[np.argsort(dist)[:max_constraints]]
        a_mat, b_vec = bisectors_from_points(
            self.points[center], self.points[others], self.weights
        )
        system = HalfspaceSystem(a_mat, b_vec, self.box, others)
        mbr = approximate_cell(
            system, backend=lp_backend, center=self.points[center]
        )
        assert mbr is not None  # the centre is always feasible
        return mbr

    def nearest(self, query: Sequence[float]) -> "Tuple[int, float]":
        """Exact weighted nearest neighbor: ``(point_id, distance)``."""
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must be a {self.dim}-vector")
        if not self.box.contains_point(q, atol=1e-9):
            raise ValueError("query lies outside the data space")
        candidates = np.unique(self.tree.point_query(q, atol=1e-9))
        if candidates.size == 0:  # numeric crack: full verification
            candidates = np.arange(self.points.shape[0])
        dist_sq = weighted_distances(q, self.points[candidates], self.weights)
        best = int(np.argmin(dist_sq))
        return int(candidates[best]), float(np.sqrt(dist_sq[best]))
