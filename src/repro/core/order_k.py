"""Order-k NN-cells: the paper's future-work extension.

The paper closes with "our future research interests are focussed on the
application of our technique to k-nearest neighbor search".  The natural
generalisation is the *order-k Voronoi diagram* (Definition 1 with
``m = k``): the order-k cell of a k-subset ``A`` is the region whose k
nearest neighbors are exactly the members of ``A``,

    ``cell(A) = { x in DS | for all a in A, b not in A:
                            d(x, a) <= d(x, b) }``

— again an intersection of bisector half-spaces, so the whole machinery
(LP-based MBR approximation, indexing, point query) carries over.

The hard part is enumerating the k-subsets with non-empty cells without
trying all ``C(N, k)``.  :func:`enumerate_order_k_cells` does a breadth-
first walk of the order-k Voronoi *adjacency graph*: starting from the
k-NN set of every data point (each is non-empty by construction — the
point itself lies in it), a cell's neighbors are reached by swapping one
inside point against one outside point across a *supporting facet* of the
cell.  Facets are detected by LP: bisector ``(a, b)`` supports a facet iff
maximising its left-hand side over the cell attains the bound.  Because
the order-k diagram's adjacency graph is connected, the BFS enumerates
every non-empty cell.

:class:`OrderKIndex` wraps the enumeration into a k-NN index with the
same query structure as the order-1 index: a point query on the cell MBRs
followed by verification over the candidate k-sets.  Complexity grows
steeply with ``k`` and ``N`` — this is a faithful prototype of the
paper's outlook, sized for the example workloads, not for bulk data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from ..geometry.distance import distances_to_points
from ..geometry.halfspace import HalfspaceSystem
from ..geometry.mbr import MBR
from ..index.bulk import bulk_load
from ..index.rstar import RStarTree
from ..index.xtree import XTree
from ..lp.interface import maximize
from .approximation import approximate_cell

__all__ = ["OrderKCell", "OrderKIndex", "enumerate_order_k_cells"]

_FACET_TOL = 1e-7


@dataclass(frozen=True)
class OrderKCell:
    """One non-empty order-k cell: its member set and MBR approximation."""

    members: "FrozenSet[int]"
    mbr: MBR


def _order_k_system(
    points: np.ndarray, members: "FrozenSet[int]", box: MBR
) -> "Tuple[HalfspaceSystem, np.ndarray]":
    """Bisector system of an order-k cell: every (inside, outside) pair."""
    n = points.shape[0]
    inside = sorted(members)
    outside = [j for j in range(n) if j not in members]
    rows_a: "List[np.ndarray]" = []
    rows_b: "List[float]" = []
    pair_index: "List[Tuple[int, int]]" = []
    for a_id in inside:
        pa = points[a_id]
        diff = 2.0 * (points[outside] - pa)
        bounds = (
            np.einsum("ij,ij->i", points[outside], points[outside])
            - float(np.dot(pa, pa))
        )
        rows_a.append(diff)
        rows_b.append(bounds)
        pair_index.extend((a_id, b_id) for b_id in outside)
    a_mat = np.vstack(rows_a) if rows_a else np.zeros((0, points.shape[1]))
    b_vec = np.concatenate(rows_b) if rows_b else np.zeros(0)
    system = HalfspaceSystem(a_mat, b_vec, box)
    # The pair index travels beside the system (HalfspaceSystem.point_ids
    # holds one id per row; order-k rows are identified by (in, out)).
    system_pairs = np.asarray(pair_index, dtype=np.int64).reshape(-1, 2)
    return system, system_pairs


def _supporting_pairs(
    system: HalfspaceSystem,
    pairs: np.ndarray,
    backend: "str | None" = None,
) -> "List[Tuple[int, int]]":
    """(inside, outside) pairs whose bisector supports a facet of the cell.

    A constraint row ``a . x <= b`` is *supporting* iff the maximum of
    ``a . x`` over the cell equals ``b`` — an LP per candidate row.  Rows
    that are slack everywhere are skipped cheaply by evaluating the cell's
    MBR corners first.
    """
    supporting: "List[Tuple[int, int]]" = []
    mbr = approximate_cell(system, backend=backend, prune=False)
    if mbr is None:
        return supporting
    for row in range(system.n_constraints):
        a = system.a[row]
        b = float(system.b[row])
        # Quick reject: if even the MBR cannot reach the plane, skip LP.
        best_over_mbr = float(np.dot(np.where(a > 0.0, mbr.high, mbr.low), a))
        if best_over_mbr < b - _FACET_TOL:
            continue
        res = maximize(a, system.a, system.b, system.box.low, system.box.high,
                       backend=backend)
        if res.is_optimal and res.objective >= b - _FACET_TOL:
            supporting.append((int(pairs[row, 0]), int(pairs[row, 1])))
    return supporting


def enumerate_order_k_cells(
    points: np.ndarray,
    k: int,
    box: "MBR | None" = None,
    backend: "str | None" = None,
) -> "List[OrderKCell]":
    """All non-empty order-k cells of ``points`` (BFS over facet swaps)."""
    pts = np.asarray(points, dtype=np.float64)
    n, dim = pts.shape
    if not 1 <= k < n:
        raise ValueError("k must satisfy 1 <= k < n")
    if box is None:
        box = MBR.unit_cube(dim)

    seeds: "Set[FrozenSet[int]]" = set()
    for i in range(n):
        dist_sq = distances_to_points(pts[i], pts)
        seeds.add(frozenset(int(j) for j in np.argsort(dist_sq)[:k]))

    visited: "Set[FrozenSet[int]]" = set()
    cells: "List[OrderKCell]" = []
    queue: "deque[FrozenSet[int]]" = deque(seeds)
    visited.update(seeds)
    while queue:
        members = queue.popleft()
        system, pairs = _order_k_system(pts, members, box)
        mbr = approximate_cell(system, backend=backend, prune=False)
        if mbr is None:
            continue  # empty cell reached via an over-eager swap
        cells.append(OrderKCell(members, mbr))
        for inside_id, outside_id in _supporting_pairs(system, pairs, backend):
            neighbor = frozenset(members - {inside_id} | {outside_id})
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return cells


class OrderKIndex:
    """k-NN index over precomputed order-k cells.

    Build enumerates every non-empty order-k cell, approximates it by its
    MBR (exact constraints — the order-1 selector heuristics would apply
    unchanged but are omitted for clarity) and indexes the rectangles.  A
    query point-queries the rectangles and verifies the candidate k-sets
    by actual distances, so answers are exact.
    """

    def __init__(
        self,
        points: np.ndarray,
        k: int,
        index_kind: str = "xtree",
        backend: "str | None" = None,
    ):
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[0] < 2:
            raise ValueError("need at least two points")
        self.k = k
        self.dim = self.points.shape[1]
        self.box = MBR.unit_cube(self.dim)
        self.cells = enumerate_order_k_cells(
            self.points, k, self.box, backend=backend
        )
        self._member_sets: "List[FrozenSet[int]]" = [
            c.members for c in self.cells
        ]
        tree_cls = XTree if index_kind == "xtree" else RStarTree
        self.tree = tree_cls(self.dim)
        lows = np.stack([c.mbr.low for c in self.cells])
        highs = np.stack([c.mbr.high for c in self.cells])
        bulk_load(self.tree, lows, highs, np.arange(len(self.cells)))

    def k_nearest(
        self, query: Sequence[float]
    ) -> "Tuple[List[int], List[float]]":
        """The exact k nearest neighbors of ``query`` (inside the box)."""
        q = np.asarray(query, dtype=np.float64)
        if not self.box.contains_point(q, atol=1e-9):
            raise ValueError("query lies outside the data space")
        cell_ids = self.tree.point_query(q, atol=1e-9)
        candidate_points: "Set[int]" = set()
        for cell_id in cell_ids:
            candidate_points.update(self._member_sets[int(cell_id)])
        if not candidate_points:  # numerical crack: fall back to all points
            candidate_points = set(range(self.points.shape[0]))
        ids = np.asarray(sorted(candidate_points), dtype=np.int64)
        dist_sq = distances_to_points(q, self.points[ids])
        order = np.argsort(dist_sq)[: self.k]
        return (
            [int(ids[i]) for i in order],
            [float(np.sqrt(dist_sq[i])) for i in order],
        )

    def stats(self) -> "Dict[str, float]":
        """Cell-count / shape diagnostics of the order-k index."""
        return {
            "n_cells": float(len(self.cells)),
            "k": float(self.k),
            "tree_height": float(self.tree.height),
        }
