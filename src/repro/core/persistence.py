"""Saving and loading NN-cell indexes.

Precomputing the solution space is the expensive step of the paper's
approach (thousands of LPs), so a production deployment computes it once
and reuses it.  This module serialises everything the precomputation
produced — the points, each cell's constraint system and its (decomposed)
rectangle approximations — into a single ``.npz`` archive, and rebuilds
the in-memory index (including both trees, via bulk loading) on load.

The archive stores *results*, not tree pages: rebuilding the trees from
the stored rectangles is deterministic and costs milliseconds, while
keeping the format independent of node-layout details.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..geometry.halfspace import HalfspaceSystem
from ..geometry.mbr import MBR
from .candidates import CandidateSelector, SelectorKind, SelectorParams
from .nncell_index import BuildConfig, NNCellIndex

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: NNCellIndex, path: "Union[str, Path]") -> None:
    """Serialise a built index to ``path`` (a ``.npz`` archive)."""
    active = index.active_ids
    arrays = {
        "format_version": np.int64(_FORMAT_VERSION),
        "points": index.points,
        "active": index._active,
        "box_low": index.box.low,
        "box_high": index.box.high,
        "selector": np.bytes_(index.config.selector.value.encode()),
        "sphere_radius_factor": np.float64(
            index.config.selector_params.sphere_radius_factor
        ),
        "decompose": np.bool_(index.config.decompose),
        "index_kind": np.bytes_(index.config.index_kind.encode()),
        "page_size": np.int64(index.config.page_size),
        "cache_pages": np.int64(index.config.cache_pages),
        "query_atol": np.float64(index.config.query_atol),
    }
    for point_id in active:
        pid = int(point_id)
        system = index._systems[pid]
        arrays[f"sys_a_{pid}"] = system.a
        arrays[f"sys_b_{pid}"] = system.b
        arrays[f"sys_ids_{pid}"] = system.point_ids
        rects = index._cell_rects[pid]
        arrays[f"rect_lows_{pid}"] = np.stack([r.low for r in rects])
        arrays[f"rect_highs_{pid}"] = np.stack([r.high for r in rects])
    np.savez_compressed(Path(path), **arrays)


def load_index(path: "Union[str, Path]") -> NNCellIndex:
    """Rebuild an index saved with :func:`save_index`."""
    with np.load(Path(path)) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index archive version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        points = archive["points"]
        active = archive["active"]
        box = MBR(archive["box_low"], archive["box_high"])
        config = BuildConfig(
            selector=SelectorKind(bytes(archive["selector"]).decode()),
            selector_params=SelectorParams(
                sphere_radius_factor=float(archive["sphere_radius_factor"])
            ),
            decompose=bool(archive["decompose"]),
            index_kind=bytes(archive["index_kind"]).decode(),
            page_size=int(archive["page_size"]),
            cache_pages=int(archive["cache_pages"]),
            query_atol=float(archive["query_atol"]),
            data_space=box,
        )

        index = NNCellIndex(points[active], config)
        # Restore the full id space (deleted rows keep their slots so the
        # stored constraint point_ids stay valid).
        index.points = points.copy()
        index._active = active.copy()

        for pid in np.flatnonzero(active):
            pid = int(pid)
            system = HalfspaceSystem(
                archive[f"sys_a_{pid}"],
                archive[f"sys_b_{pid}"],
                box,
                archive[f"sys_ids_{pid}"],
            )
            rect_lows = archive[f"rect_lows_{pid}"]
            rect_highs = archive[f"rect_highs_{pid}"]
            rects = [
                MBR(rect_lows[i], rect_highs[i])
                for i in range(rect_lows.shape[0])
            ]
            index._register_cell(pid, system, rects)

    _rebuild_runtime_state(index)
    return index


def _rebuild_runtime_state(index: NNCellIndex) -> None:
    """Reconstruct the trees and selector from the restored cell data."""
    from ..index.bulk import bulk_load

    active = index.active_ids
    live_points = index.points[active]
    if active.size > 1:
        bulk_load(index.data_tree, live_points, live_points, active)
    else:
        index.data_tree.insert_point(live_points[0], int(active[0]))

    lows, highs, owners = [], [], []
    for pid in active:
        for rect in index._cell_rects[int(pid)]:
            lows.append(rect.low)
            highs.append(rect.high)
            owners.append(int(pid))
    if len(owners) > 1:
        bulk_load(index.cell_tree, np.stack(lows), np.stack(highs), owners)
    else:
        index.cell_tree.insert(lows[0], highs[0], owners[0])

    index._selector = CandidateSelector(
        index.points,
        index.data_tree,
        index.config.selector,
        index.config.selector_params,
    )
    for pid in np.flatnonzero(~index._active):
        index._selector.set_active(int(pid), False)
