"""Saving and loading NN-cell indexes.

Precomputing the solution space is the expensive step of the paper's
approach (thousands of LPs), so a production deployment computes it once
and reuses it.  This module serialises everything the precomputation
produced — the points, each cell's constraint system and its (decomposed)
rectangle approximations — into a single ``.npz`` archive, and rebuilds
the in-memory index (including both trees, via bulk loading) on load.

The archive stores *results*, not tree pages: rebuilding the trees from
the stored rectangles is deterministic and costs milliseconds, while
keeping the format independent of node-layout details.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..geometry.halfspace import HalfspaceSystem
from ..geometry.mbr import MBR
from .candidates import CandidateSelector, SelectorKind, SelectorParams
from .nncell_index import BuildConfig, NNCellIndex

__all__ = [
    "is_sharded_archive",
    "load_any_index",
    "load_index",
    "load_sharded_index",
    "save_index",
    "save_sharded_index",
]

_FORMAT_VERSION = 1

_SHARD_FORMAT_VERSION = 1
_SHARD_MANIFEST = "manifest.json"
_SHARD_GLOBALS = "global.npz"


def save_index(index: NNCellIndex, path: "Union[str, Path]") -> None:
    """Serialise a built index to ``path`` (a ``.npz`` archive)."""
    active = index.active_ids
    arrays = {
        "format_version": np.int64(_FORMAT_VERSION),
        "points": index.points,
        "active": index._active,
        "box_low": index.box.low,
        "box_high": index.box.high,
        "selector": np.bytes_(index.config.selector.value.encode()),
        "sphere_radius_factor": np.float64(
            index.config.selector_params.sphere_radius_factor
        ),
        "decompose": np.bool_(index.config.decompose),
        "index_kind": np.bytes_(index.config.index_kind.encode()),
        "page_size": np.int64(index.config.page_size),
        "cache_pages": np.int64(index.config.cache_pages),
        "query_atol": np.float64(index.config.query_atol),
    }
    for point_id in active:
        pid = int(point_id)
        system = index._systems[pid]
        arrays[f"sys_a_{pid}"] = system.a
        arrays[f"sys_b_{pid}"] = system.b
        arrays[f"sys_ids_{pid}"] = system.point_ids
        rects = index._cell_rects[pid]
        arrays[f"rect_lows_{pid}"] = np.stack([r.low for r in rects])
        arrays[f"rect_highs_{pid}"] = np.stack([r.high for r in rects])
    np.savez_compressed(Path(path), **arrays)


def load_index(path: "Union[str, Path]") -> NNCellIndex:
    """Rebuild an index saved with :func:`save_index`."""
    with np.load(Path(path)) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index archive version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        points = archive["points"]
        active = archive["active"]
        box = MBR(archive["box_low"], archive["box_high"])
        config = BuildConfig(
            selector=SelectorKind(bytes(archive["selector"]).decode()),
            selector_params=SelectorParams(
                sphere_radius_factor=float(archive["sphere_radius_factor"])
            ),
            decompose=bool(archive["decompose"]),
            index_kind=bytes(archive["index_kind"]).decode(),
            page_size=int(archive["page_size"]),
            cache_pages=int(archive["cache_pages"]),
            query_atol=float(archive["query_atol"]),
            data_space=box,
        )

        index = NNCellIndex(points[active], config)
        # Restore the full id space (deleted rows keep their slots so the
        # stored constraint point_ids stay valid).
        index.points = points.copy()
        index._active = active.copy()

        for pid in np.flatnonzero(active):
            pid = int(pid)
            system = HalfspaceSystem(
                archive[f"sys_a_{pid}"],
                archive[f"sys_b_{pid}"],
                box,
                archive[f"sys_ids_{pid}"],
            )
            rect_lows = archive[f"rect_lows_{pid}"]
            rect_highs = archive[f"rect_highs_{pid}"]
            rects = [
                MBR(rect_lows[i], rect_highs[i])
                for i in range(rect_lows.shape[0])
            ]
            index._register_cell(pid, system, rects)

    _rebuild_runtime_state(index)
    return index


# ======================================================================
# Sharded archives: one directory, one sub-archive per live shard
#
# A sharded index persists as a *directory* so each shard stays an
# ordinary `save_index` .npz that loads independently — a deployment can
# ship shards to different hosts and only the manifest needs global
# knowledge.  `manifest.json` carries the shard/partitioner config and
# the per-shard local→global id maps; `global.npz` carries the full
# point array and active mask (rows of deleted points included, so
# global ids stay stable across save/load exactly as unsharded ids do).
# ======================================================================

def is_sharded_archive(path: "Union[str, Path]") -> bool:
    """Whether ``path`` is a sharded archive directory."""
    p = Path(path)
    return p.is_dir() and (p / _SHARD_MANIFEST).exists()


def save_sharded_index(index, path: "Union[str, Path]") -> None:
    """Serialise a :class:`~repro.shard.ShardedNNCellIndex` directory."""
    import json

    target = Path(path)
    if target.exists() and not target.is_dir():
        raise ValueError(
            f"{target} exists and is not a directory (sharded archives"
            " are directories)"
        )
    target.mkdir(parents=True, exist_ok=True)
    shard_entries = []
    for s, shard in enumerate(index._shards):
        if shard is None:
            shard_entries.append(
                {"archive": None, "global_ids": list(index._globals[s])}
            )
            continue
        name = f"shard_{s}.npz"
        save_index(shard, target / name)
        shard_entries.append(
            {"archive": name, "global_ids": list(index._globals[s])}
        )
    manifest = {
        "format_version": _SHARD_FORMAT_VERSION,
        "kind": "sharded-nncell",
        "dim": int(index.dim),
        "shard_config": {
            "n_shards": index.shard_config.n_shards,
            "partitioner": index.shard_config.partitioner,
            "hilbert_bits": index.shard_config.hilbert_bits,
            "build_workers": index.shard_config.build_workers,
            "query_workers": index.shard_config.query_workers,
        },
        "partitioner": index.partitioner.to_manifest(),
        "shards": shard_entries,
    }
    (target / _SHARD_MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    np.savez_compressed(
        target / _SHARD_GLOBALS,
        points=index.points,
        active=index._active,
        shard_of=np.asarray(index._shard_of, dtype=np.int64),
        local_of=np.asarray(index._local_of, dtype=np.int64),
    )


def load_sharded_index(path: "Union[str, Path]"):
    """Rebuild a sharded index saved with :func:`save_sharded_index`."""
    import json

    from ..shard import ShardConfig, ShardedNNCellIndex, partitioner_from_manifest

    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no sharded index archive at {source}")
    manifest_path = source / _SHARD_MANIFEST
    if not manifest_path.exists():
        raise ValueError(f"{source} is not a sharded index archive")
    manifest = json.loads(manifest_path.read_text())
    version = int(manifest.get("format_version", -1))
    if version != _SHARD_FORMAT_VERSION:
        raise ValueError(
            f"unsupported sharded archive version {version} "
            f"(expected {_SHARD_FORMAT_VERSION})"
        )
    shard_config = ShardConfig(**manifest["shard_config"])
    partitioner = partitioner_from_manifest(manifest["partitioner"])
    shards = []
    globals_ = []
    build_config = None
    for entry in manifest["shards"]:
        globals_.append([int(g) for g in entry["global_ids"]])
        if entry["archive"] is None:
            shards.append(None)
            continue
        shard = load_index(source / entry["archive"])
        if build_config is None:
            build_config = shard.config
        shards.append(shard)
    if build_config is None:  # pragma: no cover - archives are non-empty
        raise ValueError(f"{source} contains no live shards")
    with np.load(source / _SHARD_GLOBALS) as arrays:
        points = arrays["points"]
        active = arrays["active"]
        shard_of = [int(v) for v in arrays["shard_of"]]
        local_of = [int(v) for v in arrays["local_of"]]
    return ShardedNNCellIndex._restore(
        points=points,
        active=active,
        shard_config=shard_config,
        build_config=build_config,
        partitioner=partitioner,
        shards=shards,
        globals_=globals_,
        shard_of=shard_of,
        local_of=local_of,
    )


def load_any_index(path: "Union[str, Path]"):
    """Load either archive format: a directory loads as sharded, a file
    as a plain :class:`NNCellIndex` — the CLI front-ends' entry point."""
    if is_sharded_archive(path):
        return load_sharded_index(path)
    if Path(path).is_dir():
        raise ValueError(
            f"{path} is a directory without a {_SHARD_MANIFEST}"
            " (not a sharded index archive)"
        )
    return load_index(path)


def _rebuild_runtime_state(index: NNCellIndex) -> None:
    """Reconstruct the trees and selector from the restored cell data."""
    from ..index.bulk import bulk_load

    active = index.active_ids
    live_points = index.points[active]
    if active.size > 1:
        bulk_load(index.data_tree, live_points, live_points, active)
    else:
        index.data_tree.insert_point(live_points[0], int(active[0]))

    lows, highs, owners = [], [], []
    for pid in active:
        for rect in index._cell_rects[int(pid)]:
            lows.append(rect.low)
            highs.append(rect.high)
            owners.append(int(pid))
    if len(owners) > 1:
        bulk_load(index.cell_tree, np.stack(lows), np.stack(highs), owners)
    else:
        index.cell_tree.insert(lows[0], highs[0], owners[0])

    index._selector = CandidateSelector(
        index.points,
        index.data_tree,
        index.config.selector,
        index.config.selector_params,
    )
    for pid in np.flatnonzero(~index._active):
        index._selector.set_active(int(pid), False)
