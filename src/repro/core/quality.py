"""Approximation quality metrics (Figures 4b, 5 and 13).

The paper measures approximation quality as the *average overlap of the
approximations*, which "directly corresponds to the query performance":
the more the cell MBRs overlap, the more candidate rectangles a point
query returns.  Two equivalent formulations are provided:

* :func:`expected_candidates` — analytic: since the NN-cells tile the data
  space, the expected number of rectangles containing a uniformly random
  query point equals ``sum(vol(rect)) / vol(DS)``; the value is exactly
  1.0 for perfect (grid) approximations and grows with overlap;
* :func:`measured_overlap` — empirical: Monte-Carlo average of candidate
  counts over sample query points (usable for non-uniform query models).

The *quality-to-performance ratio* of Figure 5 combines quality with the
construction cost of the selector strategy; higher is better.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..geometry.mbr import MBR

__all__ = [
    "expected_candidates",
    "average_overlap",
    "measured_overlap",
    "quality_to_performance",
]


def _stack(rects: "Sequence[MBR]") -> "Tuple[np.ndarray, np.ndarray]":
    if not rects:
        raise ValueError("need at least one rectangle")
    lows = np.stack([r.low for r in rects])
    highs = np.stack([r.high for r in rects])
    return lows, highs


def expected_candidates(rects: "Sequence[MBR]", box: MBR) -> float:
    """Expected number of rectangles containing a uniform query point.

    ``sum(vol(r)) / vol(box)``; equals 1.0 when the rectangles tile the
    box exactly and grows linearly with overlapping volume.
    """
    lows, highs = _stack(rects)
    volumes = np.prod(highs - lows, axis=1)
    box_volume = box.volume()
    if box_volume <= 0.0:
        raise ValueError("data space has zero volume")
    return float(np.sum(volumes)) / box_volume


def average_overlap(rects: "Sequence[MBR]", box: MBR) -> float:
    """The paper's overlap measure: expected *surplus* candidates.

    Zero for a perfect tiling (``expected_candidates == 1``); the paper's
    Figure 4b/13 y-axis grows from ~0 exactly like this quantity.
    """
    return max(0.0, expected_candidates(rects, box) - 1.0)


def measured_overlap(
    rects: "Sequence[MBR]",
    queries: np.ndarray,
) -> float:
    """Monte-Carlo candidate count: mean rectangles containing each query."""
    lows, highs = _stack(rects)
    qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if qs.shape[1] != lows.shape[1]:
        raise ValueError("query dimensionality mismatch")
    counts = np.empty(qs.shape[0])
    for i, q in enumerate(qs):
        inside = np.logical_and(
            np.all(lows <= q + 1e-12, axis=1), np.all(q <= highs + 1e-12, axis=1)
        )
        counts[i] = float(np.sum(inside))
    return float(np.mean(counts))


def quality_to_performance(
    overlap: float, build_seconds: float, epsilon: float = 1e-9
) -> float:
    """Figure 5's combined criterion (higher = better).

    Quality is the reciprocal of (1 + overlap) — perfect approximations
    score 1 — and performance is the reciprocal of construction time, so
    the ratio rewards strategies that are both tight and cheap.  The
    absolute scale is arbitrary (the paper's axis is unlabelled); only the
    ranking across strategies is meaningful.
    """
    if build_seconds < 0.0:
        raise ValueError("build_seconds must be >= 0")
    if overlap < 0.0:
        raise ValueError("overlap must be >= 0")
    return 1.0 / ((1.0 + overlap) * (build_seconds + epsilon))
