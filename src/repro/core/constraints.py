"""NN-cell constraint systems (Definition 2 of the paper).

The NN-cell of a database point ``P`` is

    ``NNC(P) = { x in DS | for all Q != P: d(x, P) <= d(x, Q) }``

For the Euclidean metric each condition is one linear bisector constraint
(see :mod:`repro.geometry.halfspace`); this module assembles the bounded
constraint system of a cell from a chosen set of *candidate* opponents —
all of them for the paper's **Correct** algorithm, a heuristic subset for
the optimised ones (Lemma 1 guarantees that subsets only enlarge the
resulting approximation, never losing the true cell).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry.halfspace import HalfspaceSystem
from ..geometry.mbr import MBR
from ..obs import metrics

__all__ = ["cell_system", "DEFAULT_DATA_SPACE"]

DEFAULT_DATA_SPACE = None  # sentinel: unit cube of the point dimension


def cell_system(
    points: np.ndarray,
    center_id: int,
    candidate_ids: Sequence[int],
    box: "MBR | None" = None,
) -> HalfspaceSystem:
    """Constraint system of the NN-cell of ``points[center_id]``.

    ``candidate_ids`` are the opponents whose bisectors are included; the
    center itself is filtered out defensively.  ``box`` defaults to the
    unit cube, the paper's data space.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if not 0 <= center_id < pts.shape[0]:
        raise IndexError(f"center_id {center_id} out of range")
    ids = np.asarray(candidate_ids, dtype=np.int64)
    ids = ids[ids != center_id]
    if box is None:
        box = MBR.unit_cube(pts.shape[1])
    metrics.inc("selector.systems")
    metrics.observe("selector.candidates", ids.shape[0])
    return HalfspaceSystem.nn_cell(pts[center_id], pts[ids], box, point_ids=ids)


def cell_system_for_point(
    center: np.ndarray,
    opponents: np.ndarray,
    opponent_ids: Sequence[int],
    box: "MBR | None" = None,
) -> HalfspaceSystem:
    """Like :func:`cell_system` for a center not (yet) in the database —
    the dynamic-insertion path."""
    center = np.asarray(center, dtype=np.float64)
    if box is None:
        box = MBR.unit_cube(center.shape[0])
    return HalfspaceSystem.nn_cell(
        center, np.asarray(opponents, dtype=np.float64), box,
        point_ids=np.asarray(opponent_ids, dtype=np.int64),
    )
