"""MBR decomposition of NN-cells (Section 3, Definition 5).

A single MBR around an oblique high-dimensional cell wastes volume — for
sparse data the approximations approach the whole data space and a point
query touches almost every page.  The paper therefore decomposes each cell
along its ``d'`` *most oblique* dimensions into a small grid of sub-boxes
(``k = prod(n_i) <= k_max``, the paper's practical bound being ~100) and
stores the MBR approximation of ``cell ∩ sub-box`` for every non-empty
piece.  Lemma 2: the pieces tile the cell, so point queries still cannot
miss the true nearest neighbor.

Two obliqueness heuristics are provided (the paper leaves the choice open,
mentioning "the maximum of all shortest diagonals" as one possibility):

* ``"extent"`` — score a dimension by the cell MBR's side length: cheap,
  and effective because oblique cells are exactly the ones whose MBR is
  stretched;
* ``"trial"`` — trial-split each dimension at the midpoint, re-approximate
  both halves, and score by the achieved volume reduction: costs
  ``4 d^2`` extra LPs per cell but measures obliqueness directly.

Partition counts follow the paper's table (reconstructed in DESIGN.md):
with a budget ``k_max = 100``, constant per-dimension counts give
``d' = 2 -> n <= 10``, ``d' = 3 -> n <= 4``, ``d' = 4 -> n = 3`` and
``d' = 5..7 -> n = 2``; counts are non-increasing with obliqueness rank
(``n_1 >= ... >= n_d'``, Definition 5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..geometry.halfspace import HalfspaceSystem
from ..geometry.mbr import MBR
from ..obs import metrics
from .approximation import approximate_cell

__all__ = [
    "DecompositionConfig",
    "obliqueness_scores",
    "partition_counts",
    "decompose_cell",
    "decompose_cell_greedy",
]

MAX_DECOMPOSED_DIMS = 7  # the paper's d' <= 7


@dataclass(frozen=True)
class DecompositionConfig:
    """Controls the cell decomposition.

    ``k_max`` bounds the number of sub-boxes per cell; ``max_dims`` bounds
    how many dimensions are decomposed (``d'``); ``heuristic`` picks the
    obliqueness scoring; ``min_extent`` skips dimensions whose cell MBR is
    thinner than this (splitting them cannot reduce volume).

    ``strategy`` selects the partitioning scheme: ``"grid"`` is the
    paper's Definition 5 (a regular grid over the most oblique
    dimensions); ``"greedy"`` is our extension — a recursive binary
    space partition that always applies the single midpoint split with
    the largest volume reduction, spending the same ``k_max`` budget
    adaptively (see :func:`decompose_cell_greedy`).
    """

    k_max: int = 100
    max_dims: int = MAX_DECOMPOSED_DIMS
    heuristic: str = "extent"  # "extent" | "trial"
    strategy: str = "grid"  # "grid" | "greedy"
    min_extent: float = 1e-9
    lp_backend: "str | None" = field(default=None, compare=False)

    def __post_init__(self):
        if self.k_max < 1:
            raise ValueError("k_max must be >= 1")
        if self.max_dims < 1:
            raise ValueError("max_dims must be >= 1")
        if self.heuristic not in ("extent", "trial"):
            raise ValueError("heuristic must be 'extent' or 'trial'")
        if self.strategy not in ("grid", "greedy"):
            raise ValueError("strategy must be 'grid' or 'greedy'")


def obliqueness_scores(
    system: HalfspaceSystem,
    mbr: MBR,
    config: DecompositionConfig,
) -> np.ndarray:
    """Per-dimension obliqueness of the cell (higher = more oblique)."""
    if config.heuristic == "extent":
        return mbr.extents.copy()
    return _trial_split_scores(system, mbr, config)


def _trial_split_scores(
    system: HalfspaceSystem, mbr: MBR, config: DecompositionConfig
) -> np.ndarray:
    """Volume reduction achieved by a midpoint split along each dimension."""
    scores = np.zeros(mbr.dim)
    base_volume = mbr.volume()
    if base_volume <= 0.0:
        return scores
    for axis in range(mbr.dim):
        if mbr.extents[axis] <= config.min_extent:
            continue
        midpoint = mbr.center[axis]
        lower_box, upper_box = mbr.split_at(axis, midpoint)
        reduced = 0.0
        for sub_box in (lower_box, upper_box):
            sub_mbr = approximate_cell(
                system.reduced_to_box(sub_box), backend=config.lp_backend
            )
            if sub_mbr is not None:
                reduced += sub_mbr.volume()
        scores[axis] = max(0.0, 1.0 - reduced / base_volume)
    return scores


def partition_counts(
    scores: np.ndarray, config: DecompositionConfig
) -> np.ndarray:
    """Per-dimension partition counts ``n_i`` with ``prod(n_i) <= k_max``.

    Dimensions are ranked by obliqueness; the number of decomposed
    dimensions ``d'`` is chosen to maximise the scored split budget
    ``sum(score_i * log n_base)`` over the admissible constant-count
    configurations, then leftover budget is spent greedily on the most
    oblique dimensions while keeping counts non-increasing in rank.
    """
    scores = np.asarray(scores, dtype=np.float64)
    dim = scores.shape[0]
    counts = np.ones(dim, dtype=np.int64)
    if config.k_max < 2:
        return counts
    usable = np.flatnonzero(scores > 0.0)
    if usable.size == 0:
        return counts
    rank = usable[np.argsort(scores[usable])[::-1]]
    max_dims = min(config.max_dims, MAX_DECOMPOSED_DIMS, rank.size)

    best_gain = 0.0
    best_d = 0
    best_base = 1
    for d_prime in range(1, max_dims + 1):
        n_base = int(config.k_max ** (1.0 / d_prime))
        if n_base < 2:
            break
        gain = float(np.sum(scores[rank[:d_prime]]) * np.log(n_base))
        if gain > best_gain + 1e-12:
            best_gain = gain
            best_d = d_prime
            best_base = n_base
    if best_d == 0:
        return counts

    chosen = rank[:best_d]
    counts[chosen] = best_base
    # Spend remaining budget greedily, preserving n_1 >= n_2 >= ...
    product = best_base ** best_d
    for pos, axis in enumerate(chosen):
        limit = counts[chosen[pos - 1]] if pos > 0 else config.k_max
        while counts[axis] < limit:
            if product // counts[axis] * (counts[axis] + 1) > config.k_max:
                break
            product = product // counts[axis] * (counts[axis] + 1)
            counts[axis] += 1
    return counts


def decompose_cell(
    system: HalfspaceSystem,
    mbr: MBR,
    config: DecompositionConfig,
) -> "List[MBR]":
    """Decomposed MBR approximations of one cell.

    Dispatches on ``config.strategy``: the paper's grid partitioning
    (Definition 5) or the greedy recursive splitting extension.  Returns
    the approximations of all non-empty pieces; with ``k_max = 1`` (or a
    cell too thin to split) this degenerates to ``[mbr]``.
    """
    if config.strategy == "greedy":
        pieces = decompose_cell_greedy(system, mbr, config)
        metrics.inc("decomposition.cells")
        metrics.observe("decomposition.pieces", len(pieces))
        return pieces
    scores = obliqueness_scores(system, mbr, config)
    scores[mbr.extents <= config.min_extent] = 0.0
    counts = partition_counts(scores, config)
    metrics.inc("decomposition.cells")
    if int(np.prod(counts)) == 1:
        metrics.observe("decomposition.pieces", 1)
        return [mbr]

    pieces: "List[MBR]" = []
    grid_system = system.reduced_to_box(mbr)
    ranges = [range(int(c)) for c in counts]
    for multi_index in itertools.product(*ranges):
        sub_box = mbr.grid_cell(counts, np.asarray(multi_index))
        sub_mbr = approximate_cell(
            grid_system.reduced_to_box(sub_box), backend=config.lp_backend
        )
        if sub_mbr is not None:
            pieces.append(sub_mbr)
        else:
            metrics.inc("decomposition.empty_subboxes")
    if not pieces:  # numerically everything vanished: keep the plain MBR
        metrics.observe("decomposition.pieces", 1)
        return [mbr]
    metrics.observe("decomposition.pieces", len(pieces))
    return pieces


def decompose_cell_greedy(
    system: HalfspaceSystem,
    mbr: MBR,
    config: DecompositionConfig,
) -> "List[MBR]":
    """Greedy recursive decomposition (our extension to Definition 5).

    Instead of committing to one grid up front, the cell is split one
    binary cut at a time: among all current pieces and all dimensions,
    apply the midpoint split with the largest total-volume reduction,
    until the ``k_max`` piece budget is exhausted or no split reduces
    volume by more than ``_GREEDY_MIN_GAIN`` of the piece.  Spends the
    same index-entry budget where the cell is most oblique, which beats
    the uniform grid on irregular cells (see the decomposition ablation
    bench).  Pieces still tile the cell — the no-false-dismissal argument
    of Lemma 2 applies unchanged.
    """
    base = approximate_cell(
        system.reduced_to_box(mbr), backend=config.lp_backend
    )
    if base is None:
        return [mbr]

    # Each piece: (mbr_of_cell_piece, clip_box) — clip boxes tile `mbr`,
    # piece MBRs are the approximations of cell ∩ clip box.
    pieces: "List[tuple[MBR, MBR]]" = [(base, mbr)]
    while len(pieces) < config.k_max:
        best_gain = 0.0
        best: "tuple[int, List[tuple[MBR, MBR]]] | None" = None
        for index, (piece_mbr, clip_box) in enumerate(pieces):
            piece_volume = piece_mbr.volume()
            if piece_volume <= 0.0:
                continue
            for axis in range(mbr.dim):
                if piece_mbr.extents[axis] <= config.min_extent:
                    continue
                midpoint = piece_mbr.center[axis]
                lower_clip, upper_clip = clip_box.split_at(axis, midpoint)
                replacement: "List[tuple[MBR, MBR]]" = []
                child_volume = 0.0
                for child_clip in (lower_clip, upper_clip):
                    child = approximate_cell(
                        system.reduced_to_box(child_clip),
                        backend=config.lp_backend,
                    )
                    if child is not None:
                        replacement.append((child, child_clip))
                        child_volume += child.volume()
                gain = piece_volume - child_volume
                if gain > best_gain:
                    best_gain = gain
                    best = (index, replacement)
        if best is None or best_gain <= _GREEDY_MIN_GAIN * base.volume():
            break
        index, replacement = best
        pieces[index:index + 1] = replacement
    return [piece_mbr for piece_mbr, __ in pieces]


_GREEDY_MIN_GAIN = 1e-6
