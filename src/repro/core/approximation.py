"""MBR approximation of NN-cells (Definition 3 of the paper).

The minimum bounding rectangle of a cell ``{x : A x <= b} ∩ box`` is found
by ``2d`` linear programs: per dimension ``i``, minimise and maximise
``x_i`` over the cell.  The LP optima are the exact bounds ``l_i``/``h_i``
of Definition 3; with a *subset* of constraints they can only move outward
(Lemma 1), so approximations computed from the optimised selectors remain
supersets of the true cell.

:func:`approximate_cell` returns ``None`` when the system is infeasible —
impossible for a full cell (its centre is always feasible) but routine for
decomposition sub-boxes that miss the cell entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry.halfspace import HalfspaceSystem
from ..geometry.mbr import MBR
from ..lp.interface import maximize, minimize
from ..obs import metrics

__all__ = ["approximate_cell", "CellApproximation", "lp_call_count"]

# Module-level LP call counter: the Figure 4 performance experiment
# reports construction effort; LP invocations are its machine-independent
# proxy alongside wall-clock time.
_LP_CALLS = 0


def lp_call_count() -> int:
    """Total LPs solved by :func:`approximate_cell` in this process."""
    return _LP_CALLS


@dataclass(frozen=True)
class CellApproximation:
    """A cell's MBR approximation together with its provenance."""

    point_id: int
    mbr: MBR
    n_constraints: int


def approximate_cell(
    system: HalfspaceSystem,
    backend: "str | None" = None,
    center: "np.ndarray | None" = None,
    prune: bool = True,
) -> "Optional[MBR]":
    """MBR of ``system`` via ``2d`` LPs, or ``None`` if it is empty.

    ``center`` is an optional known-feasible point (the cell's own data
    point): when provided, infeasibility checks can be skipped for the
    full-cell case, and large systems take an *exact pruning* fast path:
    a preliminary superset MBR is computed from the few nearest bisector
    planes, every constraint that cannot cut that rectangle is dropped,
    and the final LPs run over the reduced system clipped to it — the
    optima are provably identical (the cell is contained in any
    subset-constraint MBR, and dropped rows hold throughout it).

    Bounds are post-processed so the returned rectangle always contains
    every feasible LP optimum despite solver roundoff.
    """
    global _LP_CALLS
    box = system.box
    dim = box.dim
    metrics.inc("cell.approximations")
    metrics.observe("cell.constraints", system.n_constraints)
    if system.n_constraints == 0:
        return MBR(box.low, box.high)

    if prune and center is not None and system.n_constraints > 6 * dim:
        plane_dist = system.distances_to_planes(center)
        nearest = np.argsort(plane_dist)[: 4 * dim]
        pre_system = HalfspaceSystem(
            system.a[nearest], system.b[nearest], box
        )
        pre_mbr = approximate_cell(
            pre_system, backend=backend, center=center, prune=False
        )
        if pre_mbr is not None:
            reduced = system.reduced_to_box(pre_mbr)
            return approximate_cell(
                reduced, backend=backend, center=center, prune=False
            )

    low = np.empty(dim)
    high = np.empty(dim)
    a, b = system.a, system.b
    for axis in range(dim):
        c = np.zeros(dim)
        c[axis] = 1.0
        res_min = minimize(c, a, b, box.low, box.high, backend=backend)
        _LP_CALLS += 1
        metrics.inc("cell.lp_calls")
        if not res_min.is_optimal:
            if res_min.status == "infeasible":
                return None
            raise RuntimeError(
                f"cell LP unexpectedly {res_min.status} on axis {axis}"
            )
        res_max = maximize(c, a, b, box.low, box.high, backend=backend)
        _LP_CALLS += 1
        metrics.inc("cell.lp_calls")
        if not res_max.is_optimal:  # pragma: no cover - same system as above
            if res_max.status == "infeasible":
                return None
            raise RuntimeError(
                f"cell LP unexpectedly {res_max.status} on axis {axis}"
            )
        low[axis] = res_min.objective
        high[axis] = res_max.objective

    if center is not None:
        # Guard against solver tolerance shaving off the centre itself.
        np.minimum(low, center, out=low)
        np.maximum(high, center, out=high)
    # Numerical safety: the MBR must stay inside the box and be ordered.
    np.clip(low, box.low, box.high, out=low)
    np.clip(high, box.low, box.high, out=high)
    high = np.maximum(low, high)
    return MBR(low, high)
