"""Core: the paper's NN-cell (Voronoi solution space) approach."""

from .approximation import CellApproximation, approximate_cell, lp_call_count
from .candidates import (
    CandidateSelector,
    SelectorKind,
    SelectorParams,
    sphere_radius,
)
from .constraints import cell_system, cell_system_for_point
from .decomposition import (
    DecompositionConfig,
    decompose_cell,
    decompose_cell_greedy,
    obliqueness_scores,
    partition_counts,
)
from .nncell_index import BuildConfig, NNCellIndex, QueryInfo
from .order_k import OrderKCell, OrderKIndex, enumerate_order_k_cells
from .persistence import (
    load_any_index,
    load_index,
    load_sharded_index,
    save_index,
    save_sharded_index,
)
from .weighted import WeightedNNCellIndex, weighted_distances
from .quality import (
    average_overlap,
    expected_candidates,
    measured_overlap,
    quality_to_performance,
)

__all__ = [
    "BuildConfig",
    "CandidateSelector",
    "CellApproximation",
    "DecompositionConfig",
    "NNCellIndex",
    "OrderKCell",
    "OrderKIndex",
    "QueryInfo",
    "WeightedNNCellIndex",
    "enumerate_order_k_cells",
    "load_any_index",
    "load_index",
    "load_sharded_index",
    "save_index",
    "save_sharded_index",
    "weighted_distances",
    "SelectorKind",
    "SelectorParams",
    "approximate_cell",
    "average_overlap",
    "cell_system",
    "cell_system_for_point",
    "decompose_cell",
    "decompose_cell_greedy",
    "expected_candidates",
    "lp_call_count",
    "measured_overlap",
    "obliqueness_scores",
    "partition_counts",
    "quality_to_performance",
    "sphere_radius",
]
