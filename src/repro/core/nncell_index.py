"""The NN-cell index: precomputed solution space for NN search.

This is the paper's contribution.  Build time precomputes, for every
database point, the MBR approximation of its NN-cell (optionally
decomposed) and stores all rectangles in a multidimensional index (the
X-tree by default).  A nearest-neighbor query then degenerates to a *point
query*: fetch the candidate rectangles containing the query point and pick
the closest owner — by Lemmas 1 and 2 the true nearest neighbor is always
among the candidates.

The index is dynamic (Section 2, "the dynamic case"):

* :meth:`insert` — existing cells can only *shrink*.  Affected cells are
  found by a pruned traversal of the solution-space index (a conservative
  superset of the cells the paper finds with its sphere query), their
  systems gain the new point's bisector, and they are re-approximated.
* :meth:`delete` — cells whose constraint system referenced the removed
  point can only *grow*; they are recomputed from fresh candidate sets
  (the approach Roos' dynamic Voronoi algorithms make exact; recomputing
  the affected approximations preserves the superset guarantee).

Queries that fall outside the data space — where NN-cells are undefined —
fall back to branch-and-bound search on the data index and are flagged in
the returned :class:`QueryInfo`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.distance import distances_to_points
from ..geometry.halfspace import HalfspaceSystem, bisector, box_inside_halfspace
from ..geometry.mbr import MBR
from ..index.bulk import bulk_load
from ..index.nnsearch import hs_k_nearest, rkv_nearest
from ..index.rstar import RStarTree
from ..index.xtree import XTree
from ..obs import analytics, events, metrics, workload
from ..obs.tracing import span
from ..storage.page import DEFAULT_PAGE_SIZE
from .approximation import approximate_cell
from .candidates import CandidateSelector, SelectorKind, SelectorParams
from .constraints import cell_system
from .decomposition import DecompositionConfig, decompose_cell

__all__ = [
    "BuildConfig",
    "NNCellIndex",
    "QueryExplain",
    "QueryInfo",
    "approximate_system",
    "compute_cell",
    "fallback_reason",
    "load_data_tree",
    "make_tree",
]


@dataclass(frozen=True)
class BuildConfig:
    """Construction parameters of an :class:`NNCellIndex`.

    The defaults mirror the paper's recommended configuration: Sphere
    candidate selection (the best quality-to-performance ratio for
    moderate dimensionality) with X-tree indexing of the approximations
    and no decomposition; turn ``decompose`` on for sparse or clustered
    data (Section 3 / Figure 13).
    """

    selector: SelectorKind = SelectorKind.SPHERE
    selector_params: SelectorParams = field(default_factory=SelectorParams)
    decompose: bool = False
    decomposition: DecompositionConfig = field(
        default_factory=DecompositionConfig
    )
    lp_backend: "str | None" = None
    index_kind: str = "xtree"  # "xtree" | "rstar"
    page_size: int = DEFAULT_PAGE_SIZE
    cache_pages: int = 0
    bulk: bool = True
    query_atol: float = 1e-9
    data_space: "MBR | None" = None
    #: Cell-construction parallelism (repro.engine): 1 = serial (default),
    #: 0 = one worker per CPU core, N > 1 = exactly N workers.  The built
    #: index is identical for every value — see docs/scaling.md.
    workers: int = 1
    executor: str = "process"  # "process" | "thread"
    build_chunk_size: "int | None" = None  # points per work unit

    def __post_init__(self):
        if self.index_kind not in ("xtree", "rstar"):
            raise ValueError("index_kind must be 'xtree' or 'rstar'")
        if self.query_atol < 0.0:
            raise ValueError("query_atol must be >= 0")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 means all CPU cores)")
        if self.executor not in ("process", "thread"):
            raise ValueError("executor must be 'process' or 'thread'")
        if self.build_chunk_size is not None and self.build_chunk_size < 1:
            raise ValueError("build_chunk_size must be >= 1")


@dataclass
class QueryInfo:
    """Diagnostics of one :meth:`NNCellIndex.nearest` call."""

    n_candidates: int = 0
    pages: int = 0
    distance_computations: int = 0
    fallback: bool = False  # branch-and-bound fallback was used
    retried_atol: bool = False  # point query repeated with looser tolerance
    #: Sharded serving only: the answer is missing some shards'
    #: candidates (see :mod:`repro.shard.resilience`).  Always ``False``
    #: for an unsharded index, whose answers are complete by definition.
    degraded: bool = False
    #: Shard ids missing from a degraded answer (empty otherwise).
    failed_shards: "Tuple[int, ...]" = ()
    #: Shards that contributed (``None`` outside sharded serving).
    shards_answered: "Optional[int]" = None


def fallback_reason(info: QueryInfo) -> "Optional[str]":
    """Why a query left the cell fast path, or ``None`` if it did not.

    ``"outside_data_space"``: the query point lies where NN-cells are
    undefined; ``"empty_point_query"``: the point query returned no
    candidates even after the loosened-tolerance retry.  Shared by the
    event log and :meth:`NNCellIndex.explain` so both report the same
    vocabulary.
    """
    if not info.fallback:
        return None
    return "empty_point_query" if info.retried_atol else "outside_data_space"


@dataclass
class QueryExplain:
    """Full account of how one query was (or would be) answered.

    Produced by :meth:`NNCellIndex.explain`; the answer fields agree
    bit-for-bit with :meth:`NNCellIndex.nearest` on the same query.
    ``path`` is the route taken:

    * ``"cell"`` — point query on the solution space succeeded directly;
    * ``"cell_retry"`` — succeeded after the loosened-tolerance retry;
    * ``"outside_data_space"`` / ``"empty_point_query"`` — the
      branch-and-bound fallback answered (same vocabulary as
      :func:`fallback_reason`).
    """

    query: np.ndarray
    path: str
    atol: float  # tolerance that produced the final candidate set
    retried_atol: bool
    nearest_id: int
    nearest_distance: float
    #: Leaf rectangles containing the query: ``(owner id, rect)``, in
    #: traversal order; one owner appears once per (decomposed) piece hit.
    rectangles: "List[Tuple[int, MBR]]"
    #: Deduplicated ``(owner id, distance)`` pairs, nearest first.
    candidates: "List[Tuple[int, float]]"
    nodes_visited: int
    pages: int
    #: Sharded serving only: the account is missing some shards (their
    #: rectangles/candidates are absent and the answer may be farther
    #: than the true nearest).  See :mod:`repro.shard.resilience`.
    degraded: bool = False
    failed_shards: "Tuple[int, ...]" = ()
    #: Shards that contributed (``None`` outside sharded serving).
    shards_answered: "Optional[int]" = None

    def as_dict(self) -> "Dict[str, Any]":
        """JSON-ready view (the ``repro explain`` / serve echo payload)."""
        return {
            "query": [float(v) for v in self.query],
            "path": self.path,
            "atol": float(self.atol),
            "retried_atol": self.retried_atol,
            "nearest_id": int(self.nearest_id),
            "nearest_distance": float(self.nearest_distance),
            "n_rectangles": len(self.rectangles),
            "rectangles": [
                {
                    "owner": int(owner),
                    "low": [float(v) for v in rect.low],
                    "high": [float(v) for v in rect.high],
                }
                for owner, rect in self.rectangles
            ],
            "n_candidates": len(self.candidates),
            "candidates": [
                {"id": int(pid), "distance": float(dist)}
                for pid, dist in self.candidates
            ],
            "nodes_visited": int(self.nodes_visited),
            "pages": int(self.pages),
            "degraded": bool(self.degraded),
            "failed_shards": [int(s) for s in self.failed_shards],
            "shards_answered": (
                None if self.shards_answered is None
                else int(self.shards_answered)
            ),
        }


# ======================================================================
# Build pipeline primitives
#
# Module-level so the serial build, the dynamic-update paths and the
# parallel workers of :mod:`repro.engine.parallel` run the *same* code —
# worker processes rebuild identical read-only state from these functions,
# which is what makes parallel construction bit-identical to serial.
# ======================================================================

def make_tree(dim: int, config: BuildConfig, leaf_entry_bytes: int) -> RStarTree:
    """An empty index tree of the configured kind and page geometry."""
    tree_cls = XTree if config.index_kind == "xtree" else RStarTree
    return tree_cls(
        dim,
        page_size=config.page_size,
        cache_pages=config.cache_pages,
        leaf_entry_bytes=leaf_entry_bytes,
    )


def load_data_tree(
    tree: RStarTree, points: np.ndarray, config: BuildConfig
) -> RStarTree:
    """Fill an empty data tree with ``points`` (bulk STR or insertion)."""
    n = points.shape[0]
    if config.bulk and n > 1:
        bulk_load(tree, points, points, np.arange(n))
    else:
        for i in range(n):
            tree.insert_point(points[i], int(i))
    return tree


def approximate_system(
    system: HalfspaceSystem, center: np.ndarray, config: BuildConfig
) -> "List[MBR]":
    """MBR approximation (Definition 3), optionally decomposed (Def. 5)."""
    mbr = approximate_cell(system, backend=config.lp_backend, center=center)
    if mbr is None:  # pragma: no cover - full cells contain their centre
        raise RuntimeError("NN-cell approximation unexpectedly empty")
    if not config.decompose:
        return [mbr]
    decomposition = replace(config.decomposition, lp_backend=config.lp_backend)
    return decompose_cell(system, mbr, decomposition)


def compute_cell(
    points: np.ndarray,
    selector: CandidateSelector,
    box: MBR,
    config: BuildConfig,
    point_id: int,
) -> "Tuple[HalfspaceSystem, List[MBR]]":
    """Candidate selection -> constraint system -> MBR (-> pieces)."""
    candidates = selector.candidates(point_id)
    system = cell_system(points, point_id, candidates, box)
    return system, approximate_system(system, points[point_id], config)


class NNCellIndex:
    """Voronoi-cell (solution space) nearest-neighbor index."""

    def __init__(self, points: np.ndarray, config: "BuildConfig | None" = None):
        """Use :meth:`build`; the constructor only wires the empty state."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        self.config = config or BuildConfig()
        self.points = pts.copy()
        self.dim = pts.shape[1]
        self.box = self.config.data_space or MBR.unit_cube(self.dim)
        if self.box.dim != self.dim:
            raise ValueError("data_space dimensionality mismatch")
        if not all(self.box.contains_point(p, atol=1e-12) for p in pts):
            raise ValueError("all points must lie inside the data space")
        self._active = np.ones(pts.shape[0], dtype=bool)
        self._systems: "Dict[int, HalfspaceSystem]" = {}
        self._cell_rects: "Dict[int, List[MBR]]" = {}
        self._referencing: "Dict[int, Set[int]]" = {}
        # Data pages hold points (d coordinates + id); solution-space
        # pages hold a cell rectangle plus its owner's coordinates
        # (3d values + id) — the paper's "twice the size of the database".
        self.data_tree: RStarTree = make_tree(
            self.dim, self.config, leaf_entry_bytes=8 * self.dim + 8
        )
        self.cell_tree: RStarTree = make_tree(
            self.dim, self.config, leaf_entry_bytes=3 * 8 * self.dim + 8
        )
        self._selector: "Optional[CandidateSelector]" = None

    # ==================================================================
    # Construction
    # ==================================================================
    @classmethod
    def build(
        cls, points: np.ndarray, config: "BuildConfig | None" = None
    ) -> "NNCellIndex":
        """Precompute the solution space of ``points`` and index it."""
        index = cls(points, config)
        index._build()
        return index

    def _build(self) -> None:
        n = self.points.shape[0]
        workers = self.config.workers
        if workers != 1:
            from ..engine.parallel import resolve_workers

            workers = resolve_workers(workers)
        with span("build.nncell", n_points=n, dim=self.dim,
                  selector=self.config.selector.value,
                  workers=workers) as root:
            with span("build.data_tree"):
                load_data_tree(self.data_tree, self.points, self.config)
            self._selector = CandidateSelector(
                self.points,
                self.data_tree,
                self.config.selector,
                self.config.selector_params,
            )
            all_lows: "List[np.ndarray]" = []
            all_highs: "List[np.ndarray]" = []
            all_ids: "List[int]" = []
            with span("build.cells", workers=workers):
                if workers > 1:
                    from ..engine.parallel import parallel_cells

                    cells = parallel_cells(
                        self.points, self.config, workers=workers
                    )
                else:
                    cells = (
                        self._compute_cell(int(i)) for i in range(n)
                    )
                for point_id, (system, rects) in enumerate(cells):
                    self._register_cell(int(point_id), system, rects)
                    for rect in rects:
                        all_lows.append(rect.low)
                        all_highs.append(rect.high)
                        all_ids.append(int(point_id))
            with span("build.cell_tree"):
                if self.config.bulk and len(all_ids) > 1:
                    bulk_load(
                        self.cell_tree,
                        np.stack(all_lows),
                        np.stack(all_highs),
                        all_ids,
                    )
                else:
                    for low, high, entry_id in zip(all_lows, all_highs, all_ids):
                        self.cell_tree.insert(low, high, entry_id)
            root.set("n_rectangles", len(all_ids))
        metrics.inc("build.cells", n)
        metrics.inc("build.rectangles", len(all_ids))

    def _compute_cell(
        self, point_id: int
    ) -> "Tuple[HalfspaceSystem, List[MBR]]":
        """Candidate selection -> constraint system -> MBR (-> pieces)."""
        return compute_cell(
            self.points, self._selector, self.box, self.config, point_id
        )

    def _approximate(
        self, system: HalfspaceSystem, center: np.ndarray
    ) -> "List[MBR]":
        return approximate_system(system, center, self.config)

    # ------------------------------------------------------------------
    # Cell bookkeeping
    # ------------------------------------------------------------------
    def _register_cell(
        self, point_id: int, system: HalfspaceSystem, rects: "List[MBR]"
    ) -> None:
        self._systems[point_id] = system
        self._cell_rects[point_id] = rects
        for opponent in np.unique(system.point_ids):
            if opponent >= 0:
                self._referencing.setdefault(int(opponent), set()).add(point_id)

    def _unregister_cell(self, point_id: int) -> None:
        system = self._systems.pop(point_id)
        for opponent in np.unique(system.point_ids):
            if opponent >= 0:
                refs = self._referencing.get(int(opponent))
                if refs is not None:
                    refs.discard(point_id)
                    if not refs:
                        del self._referencing[int(opponent)]
        del self._cell_rects[point_id]

    def _replace_cell_in_tree(
        self, point_id: int, new_rects: "List[MBR]"
    ) -> None:
        for rect in self._cell_rects[point_id]:
            removed = self.cell_tree.delete(rect.low, rect.high, point_id)
            if not removed:  # pragma: no cover - bookkeeping invariant
                raise RuntimeError(
                    f"cell rectangle of point {point_id} missing from index"
                )
        for rect in new_rects:
            self.cell_tree.insert(rect.low, rect.high, point_id)

    # ==================================================================
    # Queries
    # ==================================================================
    def nearest(
        self, query: Sequence[float]
    ) -> "Tuple[int, float, QueryInfo]":
        """Nearest neighbor of ``query``: ``(point_id, distance, info)``.

        Inside the data space this is one point query on the solution
        space index plus a distance scan over the candidate owners.
        Outside the data space (where NN-cells are not defined) the data
        index answers via branch-and-bound, with ``info.fallback`` set.
        """
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must be a {self.dim}-vector")
        if not events.enabled():
            point_id, distance, info = self._nearest_impl(q)
            workload.record_query(
                q, point_id, distance, info.pages,
                source="fallback" if info.fallback else "cell",
            )
            return point_id, distance, info
        start = time.perf_counter()
        point_id, distance, info = self._nearest_impl(q)
        events.emit(
            "query",
            outcome="fallback" if info.fallback else "cell",
            point_id=int(point_id),
            candidates=info.n_candidates,
            pages=info.pages,
            retried_atol=info.retried_atol,
            fallback_reason=fallback_reason(info),
            duration_ms=1e3 * (time.perf_counter() - start),
        )
        workload.record_query(
            q, point_id, distance, info.pages,
            source="fallback" if info.fallback else "cell",
        )
        return point_id, distance, info

    def _nearest_impl(self, q: np.ndarray) -> "Tuple[int, float, QueryInfo]":
        info = QueryInfo()
        with span("query.nearest", dim=self.dim) as root:
            if not self.box.contains_point(q, atol=self.config.query_atol):
                return self._fallback_nearest(q, info)

            before = self.cell_tree.pages.stats.logical_reads
            with span("query.point_query") as lookup:
                candidate_ids = np.unique(
                    self.cell_tree.point_query(q, atol=self.config.query_atol)
                )
                if candidate_ids.size == 0:
                    # Roundoff pushed the query through a cell boundary
                    # crack: retry once with a much looser tolerance
                    # before giving up.
                    info.retried_atol = True
                    metrics.inc("query.atol_retries")
                    candidate_ids = np.unique(
                        self.cell_tree.point_query(
                            q, atol=max(self.config.query_atol * 1e4, 1e-6)
                        )
                    )
                info.pages += (
                    self.cell_tree.pages.stats.logical_reads - before
                )
                lookup.set("pages", info.pages)
            if candidate_ids.size == 0:  # pragma: no cover - safety net
                return self._fallback_nearest(q, info)

            with span("query.candidate_scan") as scan:
                dist_sq = distances_to_points(q, self.points[candidate_ids])
                info.n_candidates = int(candidate_ids.size)
                info.distance_computations = int(candidate_ids.size)
                scan.set("candidates", info.n_candidates)
            analytics.record_cells(candidate_ids)
            metrics.inc("query.count")
            metrics.observe("query.candidates", info.n_candidates)
            metrics.observe("query.pages", info.pages)
            root.set("pages", info.pages)
            root.set("candidates", info.n_candidates)
            best = int(np.argmin(dist_sq))
            return int(candidate_ids[best]), float(np.sqrt(dist_sq[best])), info

    def _fallback_nearest(
        self, q: np.ndarray, info: QueryInfo
    ) -> "Tuple[int, float, QueryInfo]":
        info.fallback = True
        metrics.inc("query.fallbacks")
        with span("query.fallback"):
            result = rkv_nearest(self.data_tree, q)
        info.pages += result.pages
        info.distance_computations += result.distance_computations
        return result.nearest_id, result.nearest_distance, info

    def k_nearest(
        self, query: Sequence[float], k: int
    ) -> "Tuple[List[int], List[float], QueryInfo]":
        """Exact k nearest neighbors via the solution-space index.

        The point query yields the order-1 candidates; their k-th best
        distance is a valid upper bound on the k-NN radius, so one sphere
        query on the data index completes the answer exactly.  (The
        paper's future work proposes order-k cells — implemented in
        :mod:`repro.core.order_k` — for turning this into a single point
        query; this method is the practical hybrid.)
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must be a {self.dim}-vector")
        n_live = len(self)
        k_eff = min(k, n_live)
        info = QueryInfo()
        with span("query.k_nearest", dim=self.dim, k=k_eff) as root:
            if not self.box.contains_point(q, atol=self.config.query_atol):
                info.fallback = True
                metrics.inc("query.fallbacks")
                with span("query.fallback"):
                    result = hs_k_nearest(self.data_tree, q, k_eff)
                info.pages += result.pages
                info.distance_computations += result.distance_computations
                return result.ids, result.distances, info

            before = self.cell_tree.pages.stats.logical_reads
            with span("query.point_query") as lookup:
                candidates = np.unique(
                    self.cell_tree.point_query(q, atol=self.config.query_atol)
                )
                info.pages += self.cell_tree.pages.stats.logical_reads - before
                lookup.set("pages", info.pages)

            if candidates.size < k_eff:
                # Not enough order-1 candidates: let the data index finish.
                info.fallback = True
                metrics.inc("query.fallbacks")
                with span("query.fallback"):
                    result = hs_k_nearest(self.data_tree, q, k_eff)
                info.pages += result.pages
                info.distance_computations += result.distance_computations
                return result.ids, result.distances, info

            with span("query.candidate_scan") as scan:
                dist_sq = distances_to_points(q, self.points[candidates])
                info.n_candidates = int(candidates.size)
                info.distance_computations += int(candidates.size)
                scan.set("candidates", info.n_candidates)
            analytics.record_cells(candidates)
            order = np.argsort(dist_sq)
            radius = float(np.sqrt(dist_sq[order[k_eff - 1]]))

            # Every k-NN member lies within the candidates' k-th distance.
            before = self.data_tree.pages.stats.logical_reads
            with span("query.sphere_refinement"):
                within = self.data_tree.sphere_query(
                    q, radius + self.config.query_atol
                )
            info.pages += self.data_tree.pages.stats.logical_reads - before
            within = np.unique(within)
            final_sq = distances_to_points(q, self.points[within])
            info.distance_computations += int(within.size)
            metrics.inc("query.count")
            metrics.observe("query.candidates", info.n_candidates)
            metrics.observe("query.pages", info.pages)
            root.set("pages", info.pages)
            root.set("candidates", info.n_candidates)
            best = np.argsort(final_sq)[:k_eff]
            return (
                [int(within[i]) for i in best],
                [float(np.sqrt(final_sq[i])) for i in best],
                info,
            )

    def within_radius(
        self, center: Sequence[float], radius: float
    ) -> np.ndarray:
        """Ids of all points within Euclidean distance ``radius``.

        Range queries bypass the solution space (cells answer *nearest*
        questions); the data index serves them directly.
        """
        if radius < 0.0:
            raise ValueError("radius must be >= 0")
        c = np.asarray(center, dtype=np.float64)
        if c.shape != (self.dim,):
            raise ValueError(f"center must be a {self.dim}-vector")
        candidates = np.unique(self.data_tree.sphere_query(c, radius))
        if candidates.size == 0:
            return candidates
        dist_sq = distances_to_points(c, self.points[candidates])
        return candidates[dist_sq <= radius * radius + 1e-12]

    def query_batch(
        self, queries: np.ndarray, batch_size: "int | None" = None
    ) -> "Tuple[np.ndarray, np.ndarray, 'BatchQueryInfo']":
        """Answer many NN queries in one batched index walk.

        Returns ``(ids, distances, info)`` where ``info`` aggregates page
        and candidate traffic over the whole batch.  Results are
        identical to calling :meth:`nearest` per row (the parity suite
        asserts this bit-for-bit), but the tree descent is shared: every
        index node along the batch's paths is read *once*, not once per
        query.  ``batch_size`` caps the number of queries walked
        together, bounding the working-set memory of the vectorised
        containment tests.  See :mod:`repro.engine.batch`.
        """
        from ..engine.batch import query_batch

        return query_batch(self, queries, batch_size=batch_size)

    def nearest_batch(
        self, queries: np.ndarray
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Vectorised convenience: NN ids and distances for many queries."""
        ids, dists, __ = self.query_batch(queries)
        return ids, dists

    def explain(self, query: Sequence[float]) -> QueryExplain:
        """Why ``query``'s answer is what it is: a :class:`QueryExplain`.

        Re-runs the :meth:`nearest` decision procedure while recording
        what each step saw — the leaf rectangles containing the point,
        the deduplicated candidate owners with their distances, the
        tolerance retries, and which path produced the answer.  The
        returned ``nearest_id``/``nearest_distance`` match
        :meth:`nearest` exactly (same candidate set, same tie-break).

        Surfaced as ``python -m repro explain`` and as the serve JSONL
        protocol's ``"explain": true`` request field.
        """
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must be a {self.dim}-vector")
        atol = self.config.query_atol
        if not self.box.contains_point(q, atol=atol):
            result = rkv_nearest(self.data_tree, q)
            return QueryExplain(
                query=q, path="outside_data_space", atol=atol,
                retried_atol=False, nearest_id=result.nearest_id,
                nearest_distance=result.nearest_distance, rectangles=[],
                candidates=[], nodes_visited=0, pages=result.pages,
            )
        path = "cell"
        retried = False
        rectangles, visited, pages = self._explain_point_query(q, atol)
        if not rectangles:
            # Mirror nearest(): one retry with a much looser tolerance.
            path, retried = "cell_retry", True
            atol = max(self.config.query_atol * 1e4, 1e-6)
            rectangles, more_visited, more_pages = (
                self._explain_point_query(q, atol)
            )
            visited += more_visited
            pages += more_pages
        if not rectangles:
            result = rkv_nearest(self.data_tree, q)
            return QueryExplain(
                query=q, path="empty_point_query", atol=atol,
                retried_atol=True, nearest_id=result.nearest_id,
                nearest_distance=result.nearest_distance, rectangles=[],
                candidates=[], nodes_visited=visited,
                pages=pages + result.pages,
            )
        # np.unique sorts ids, and argsort is stable — so among
        # equidistant owners the lowest id wins, exactly as nearest()'s
        # argmin over the unique candidate array does.
        owners = np.unique([owner for owner, _ in rectangles])
        dist = np.sqrt(distances_to_points(q, self.points[owners]))
        order = np.argsort(dist)
        candidates = [
            (int(owners[i]), float(dist[i])) for i in order
        ]
        return QueryExplain(
            query=q, path=path, atol=atol, retried_atol=retried,
            nearest_id=candidates[0][0],
            nearest_distance=candidates[0][1],
            rectangles=rectangles, candidates=candidates,
            nodes_visited=visited, pages=pages,
        )

    def _explain_point_query(
        self, q: np.ndarray, atol: float
    ) -> "Tuple[List[Tuple[int, MBR]], int, int]":
        """The cell tree's point query, keeping the hit rectangles.

        Same containment arithmetic as ``RStarTree.point_query`` but
        returns ``(rectangles, nodes visited, pages read)`` instead of
        bare owner ids.
        """
        tree = self.cell_tree
        before = tree.pages.stats.logical_reads
        rectangles: "List[Tuple[int, MBR]]" = []
        visited = 0
        stack = [tree.root_id]
        while stack:
            node = tree._read(stack.pop())
            visited += 1
            if node.n_entries == 0:
                continue
            mask = np.logical_and(
                np.all(node.lows <= q + atol, axis=1),
                np.all(q <= node.highs + atol, axis=1),
            )
            hits = np.flatnonzero(mask)
            if node.is_leaf:
                rectangles.extend(
                    (
                        int(node.ids[i]),
                        MBR(node.lows[i].copy(), node.highs[i].copy()),
                    )
                    for i in hits
                )
            else:
                stack.extend(int(node.ids[i]) for i in hits)
        pages = tree.pages.stats.logical_reads - before
        return rectangles, visited, pages

    # ==================================================================
    # Dynamic updates
    # ==================================================================
    def insert(self, point: Sequence[float]) -> int:
        """Insert a new data point; returns its id.

        Existing NN-cells can only shrink (their systems gain one
        bisector), so the update is local: only cells whose approximation
        is not entirely on the old owner's side of the new bisector are
        recomputed.
        """
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (self.dim,):
            raise ValueError(f"point must be a {self.dim}-vector")
        if not self.box.contains_point(p, atol=1e-12):
            raise ValueError("point lies outside the data space")
        new_id = self.points.shape[0]
        self.points = np.vstack([self.points, p[None, :]])
        self._active = np.append(self._active, True)
        self._selector.extend_points(p[None, :])
        self.data_tree.insert_point(p, new_id)

        for cell_id in self._cells_possibly_shrunk_by(p):
            a, b = bisector(self.points[cell_id], p)
            old_system = self._systems[cell_id]
            new_system = old_system.with_constraint(a, b, point_id=new_id)
            rects = self._approximate(new_system, self.points[cell_id])
            self._replace_cell_in_tree(cell_id, rects)
            self._unregister_cell(cell_id)
            self._register_cell(cell_id, new_system, rects)

        system, rects = self._compute_cell(new_id)
        self._register_cell(new_id, system, rects)
        for rect in rects:
            self.cell_tree.insert(rect.low, rect.high, new_id)
        return new_id

    def _cells_possibly_shrunk_by(self, p: np.ndarray) -> "List[int]":
        """Owners whose stored approximation may intersect the region now
        claimed by ``p``.

        A cell entry ``r`` owned by ``c`` is certainly unaffected when
        ``r`` lies inside the half-space of points closer to ``c`` than to
        ``p``.  Whole subtrees are pruned with the weaker but
        owner-independent test ``mindist(region, p) >= diam(region)``
        (every owner lives inside its own rectangle, hence inside the
        region, so no point of the region can prefer ``p``).
        """
        affected: "Set[int]" = set()
        stack = [self.cell_tree.root_id]
        while stack:
            node = self.cell_tree._read(stack.pop())
            if node.n_entries == 0:
                continue
            region = node.mbr()
            nearest = np.clip(p, region.low, region.high)
            mindist_sq = float(np.sum((nearest - p) ** 2))
            diam_sq = float(np.sum(region.extents ** 2))
            if mindist_sq >= diam_sq:
                continue
            if node.is_leaf:
                for low, high, owner in node.entries():
                    if owner in affected:
                        continue
                    a, b = bisector(self.points[owner], p)
                    if not box_inside_halfspace(MBR(low, high), a, b):
                        affected.add(owner)
            else:
                stack.extend(int(i) for i in node.ids)
        return sorted(affected)

    def delete(self, point_id: int) -> None:
        """Remove a point; the cells that referenced it are recomputed
        (they can only grow, so recomputation keeps the superset
        guarantee)."""
        if not self._is_active(point_id):
            raise KeyError(f"point {point_id} is not in the index")
        if int(np.sum(self._active)) == 1:
            raise ValueError("cannot delete the last remaining point")
        self._replace_cell_in_tree(point_id, [])
        self._unregister_cell(point_id)
        removed = self.data_tree.delete(
            self.points[point_id], self.points[point_id], point_id
        )
        if not removed:  # pragma: no cover - bookkeeping invariant
            raise RuntimeError(f"point {point_id} missing from data index")
        self._active[point_id] = False
        self._selector.set_active(point_id, False)

        for cell_id in sorted(self._referencing.get(point_id, set())):
            system, rects = self._compute_cell(cell_id)
            self._replace_cell_in_tree(cell_id, rects)
            self._unregister_cell(cell_id)
            self._register_cell(cell_id, system, rects)
        self._referencing.pop(point_id, None)

    # ==================================================================
    # Introspection
    # ==================================================================
    def _is_active(self, point_id: int) -> bool:
        return (
            0 <= point_id < self._active.shape[0]
            and bool(self._active[point_id])
        )

    def __len__(self) -> int:
        return int(np.sum(self._active))

    @property
    def active_ids(self) -> np.ndarray:
        return np.flatnonzero(self._active)

    def cell_rectangles(self, point_id: int) -> "List[MBR]":
        """The stored (decomposed) approximation of one cell."""
        if not self._is_active(point_id):
            raise KeyError(f"point {point_id} is not in the index")
        return list(self._cell_rects[point_id])

    def constraint_system(self, point_id: int) -> HalfspaceSystem:
        """The bisector constraint system backing one cell."""
        if not self._is_active(point_id):
            raise KeyError(f"point {point_id} is not in the index")
        return self._systems[point_id]

    def all_cell_rectangles(self) -> "List[Tuple[int, MBR]]":
        """Every stored rectangle as ``(owner id, rect)`` pairs."""
        return [
            (point_id, rect)
            for point_id in sorted(self._cell_rects)
            for rect in self._cell_rects[point_id]
        ]

    def stats(self) -> "Dict[str, float]":
        """Sizing diagnostics: rectangle counts, volumes, tree shape."""
        rect_count = sum(len(r) for r in self._cell_rects.values())
        total_volume = sum(
            rect.volume()
            for rects in self._cell_rects.values()
            for rect in rects
        )
        box_volume = self.box.volume()
        return {
            "n_points": float(len(self)),
            "n_rectangles": float(rect_count),
            "expected_candidates": total_volume / box_volume,
            "cell_tree_height": float(self.cell_tree.height),
            "data_tree_height": float(self.data_tree.height),
            "cell_tree_blocks": float(self.cell_tree.pages.total_blocks()),
        }
