"""The four candidate-selection strategies of Section 2 / Figure 3.

Computing a cell approximation with *all* ``N - 1`` bisector constraints
(**Correct**) makes every LP cost ``O(N d^2)`` — prohibitive for large
databases.  The paper's key engineering observation is that only a few
close points actually bound a NN-cell, so it restricts the constraint set:

* **Point** — all points stored on data pages whose page region contains
  the centre point ("all points of which the rectangle in the index
  contains the point");
* **Sphere** — all points on data pages whose page region intersects a
  heuristic sphere around the centre ("... intersects the sphere"); the
  paper reports ``radius = 2 * (1/n)^(1/d)`` — twice the uniform NN
  distance scale — as a good heuristic (the factor is configurable);
* **NN-Direction** — a constant-size set: the nearest neighbor in each of
  the ``2d`` axis directions plus, per direction, the point with the
  smallest angular deviation from the axis (at most ``4d`` points, making
  the LP cost ``O(d * d!)``-style constant in ``N``).

Lemma 1 (tested in ``tests/core/test_lemma1.py``): every strategy yields
an approximation containing the Correct one, so none induces false
dismissals.

Selectors are stateful objects bound to the point set and its data index;
``candidates(i)`` returns opponent ids for database point ``i`` and
``candidates_for_point(p)`` serves the dynamic-insert path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..geometry.distance import distances_to_points
from ..index.rstar import RStarTree

__all__ = [
    "SelectorKind",
    "SelectorParams",
    "CandidateSelector",
    "sphere_radius",
]


class SelectorKind(enum.Enum):
    """Which constraint-selection algorithm to use (Figure 3)."""

    CORRECT = "correct"
    POINT = "point"
    SPHERE = "sphere"
    NN_DIRECTION = "nn-direction"


@dataclass(frozen=True)
class SelectorParams:
    """Tuning knobs of the optimised selectors.

    ``sphere_radius_factor`` scales the Sphere heuristic radius
    ``factor * (1/n)^(1/d)``; the paper's reported value corresponds to
    ``2.0``.  ``min_candidates`` guards degenerate cases: whenever an
    optimised selector returns fewer opponents, it is topped up with the
    globally nearest points so every cell stays bounded by at least one
    bisector (still a subset-free superset approximation by Lemma 1 —
    adding constraints can only be *closer* to correct).
    """

    sphere_radius_factor: float = 2.0
    min_candidates: int = 1


def sphere_radius(n: int, dim: int, factor: float = 2.0) -> float:
    """The Sphere selector's heuristic radius ``factor * (1/n)^(1/d)``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    return factor * (1.0 / n) ** (1.0 / dim)


class CandidateSelector:
    """Resolves the opponent set used to approximate each NN-cell."""

    def __init__(
        self,
        points: np.ndarray,
        data_tree: "RStarTree | None",
        kind: SelectorKind,
        params: "SelectorParams | None" = None,
    ):
        self._points = np.asarray(points, dtype=np.float64)
        if self._points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        if kind in (SelectorKind.POINT, SelectorKind.SPHERE) and data_tree is None:
            raise ValueError(f"{kind.value} selector requires a data index")
        self._tree = data_tree
        self.kind = kind
        self.params = params or SelectorParams()
        self._active = np.ones(self._points.shape[0], dtype=bool)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return int(np.sum(self._active))

    @property
    def dim(self) -> int:
        return self._points.shape[1]

    def set_active(self, point_id: int, active: bool) -> None:
        """Track deletions so candidate sets never cite dead points."""
        self._active[point_id] = active

    def extend_points(self, new_points: np.ndarray) -> None:
        """Register appended database points (dynamic insertion)."""
        new_points = np.atleast_2d(np.asarray(new_points, dtype=np.float64))
        self._points = np.vstack([self._points, new_points])
        self._active = np.append(
            self._active, np.ones(new_points.shape[0], dtype=bool)
        )

    # ------------------------------------------------------------------
    def candidates(self, center_id: int) -> np.ndarray:
        """Opponent ids for database point ``center_id``."""
        return self.candidates_for_point(
            self._points[center_id], exclude=center_id
        )

    def candidates_for_point(
        self, center: Sequence[float], exclude: int = -1
    ) -> np.ndarray:
        """Opponent ids for an arbitrary centre (insert path)."""
        center = np.asarray(center, dtype=np.float64)
        if self.kind is SelectorKind.CORRECT:
            ids = np.flatnonzero(self._active)
        elif self.kind is SelectorKind.POINT:
            ids = self._point_query_ids(center)
        elif self.kind is SelectorKind.SPHERE:
            ids = self._sphere_query_ids(center)
        else:
            ids = self._nn_direction_ids(center, exclude)
        ids = ids[(ids != exclude) & self._active[ids]]
        ids = np.unique(ids)
        return self._ensure_minimum(center, ids, exclude)

    # ------------------------------------------------------------------
    # Strategy implementations
    # ------------------------------------------------------------------
    def _point_query_ids(self, center: np.ndarray) -> np.ndarray:
        leaves = self._tree.leaves_containing(center)
        ids: "List[int]" = []
        for leaf in leaves:
            ids.extend(int(i) for i in leaf.ids)
        return np.asarray(ids, dtype=np.int64)

    def _sphere_query_ids(self, center: np.ndarray) -> np.ndarray:
        radius = sphere_radius(
            max(self.n_points, 1), self.dim, self.params.sphere_radius_factor
        )
        leaves = self._tree.leaves_intersecting_sphere(center, radius)
        ids: "List[int]" = []
        for leaf in leaves:
            ids.extend(int(i) for i in leaf.ids)
        return np.asarray(ids, dtype=np.int64)

    def _nn_direction_ids(self, center: np.ndarray, exclude: int) -> np.ndarray:
        """2d directional nearest neighbors + 2d minimal-axis-deviation
        points (NNDimQuery and NNAxesQuery in the paper's Figure 3)."""
        active_ids = np.flatnonzero(self._active)
        if exclude >= 0:
            active_ids = active_ids[active_ids != exclude]
        if active_ids.size == 0:
            return active_ids
        pts = self._points[active_ids]
        diff = pts - center
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        # Exact duplicates of the centre bound the cell to a point; they
        # carry no direction, so handle them via the minimum top-up.
        nonzero = dist_sq > 0.0
        chosen: "List[int]" = []
        if np.any(nonzero):
            sub_ids = active_ids[nonzero]
            sub_diff = diff[nonzero]
            sub_dist = dist_sq[nonzero]
            norms = np.sqrt(sub_dist)
            for axis in range(self.dim):
                coords = sub_diff[:, axis]
                for sign in (1.0, -1.0):
                    side = sign * coords > 0.0
                    if not np.any(side):
                        continue
                    side_idx = np.flatnonzero(side)
                    # Nearest neighbor within the directional half-space.
                    nearest = side_idx[np.argmin(sub_dist[side_idx])]
                    chosen.append(int(sub_ids[nearest]))
                    # Smallest deviation from the axis: maximal cosine
                    # between (Q - P) and the signed axis direction.
                    cosines = sign * coords[side_idx] / norms[side_idx]
                    straightest = side_idx[np.argmax(cosines)]
                    chosen.append(int(sub_ids[straightest]))
        return np.asarray(chosen, dtype=np.int64)

    def _ensure_minimum(
        self, center: np.ndarray, ids: np.ndarray, exclude: int
    ) -> np.ndarray:
        """Top up under-sized candidate sets with global nearest points."""
        needed = self.params.min_candidates - ids.shape[0]
        available = self.n_points - (1 if exclude >= 0 else 0)
        if needed <= 0 or available <= ids.shape[0]:
            return ids
        active_ids = np.flatnonzero(self._active)
        if exclude >= 0:
            active_ids = active_ids[active_ids != exclude]
        pool = np.setdiff1d(active_ids, ids, assume_unique=False)
        if pool.size == 0:
            return ids
        dist_sq = distances_to_points(center, self._points[pool])
        extra = pool[np.argsort(dist_sq)[:needed]]
        return np.union1d(ids, extra)
