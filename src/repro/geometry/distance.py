"""Distance functions for points and rectangles.

Provides the Euclidean machinery the index layer needs for nearest-neighbor
search: plain point-to-point distances (vectorised), plus the classic
``MINDIST`` / ``MINMAXDIST`` / ``MAXDIST`` bounds between a query point and
an MBR from Roussopoulos, Kelley & Vincent (SIGMOD 1995) — the pruning
metrics of the RKV branch-and-bound algorithm the paper benchmarks against.

All functions operate on squared distances internally where possible; the
``*_sq`` variants expose that to callers that only compare distances.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "euclidean",
    "euclidean_sq",
    "pairwise_sq",
    "distances_to_points",
    "nearest_of",
    "mindist_sq",
    "minmaxdist_sq",
    "maxdist_sq",
    "mindist_sq_arrays",
    "minmaxdist_sq_arrays",
]


def euclidean_sq(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance between two points."""
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.dot(diff, diff))


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points."""
    return float(np.sqrt(euclidean_sq(a, b)))


def pairwise_sq(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` matrix of squared distances between rows."""
    pts = np.asarray(points, dtype=np.float64)
    sq = np.sum(pts * pts, axis=1)
    gram = pts @ pts.T
    dists = sq[:, None] + sq[None, :] - 2.0 * gram
    np.clip(dists, 0.0, None, out=dists)
    return dists


def distances_to_points(query: Sequence[float], points: np.ndarray) -> np.ndarray:
    """Vector of squared distances from ``query`` to each row of ``points``."""
    q = np.asarray(query, dtype=np.float64)
    diff = np.asarray(points, dtype=np.float64) - q
    return np.einsum("ij,ij->i", diff, diff)


def nearest_of(query: Sequence[float], points: np.ndarray) -> "tuple[int, float]":
    """Index and Euclidean distance of the row of ``points`` nearest to
    ``query``.  Ties break to the lowest index (numpy argmin semantics)."""
    dists = distances_to_points(query, points)
    idx = int(np.argmin(dists))
    return idx, float(np.sqrt(dists[idx]))


# ----------------------------------------------------------------------
# Point <-> rectangle bounds (RKV pruning metrics)
# ----------------------------------------------------------------------

def mindist_sq(query: Sequence[float], low: np.ndarray, high: np.ndarray) -> float:
    """Squared distance from ``query`` to the nearest point of the MBR.

    Zero when the query lies inside the rectangle.  ``MINDIST`` is a lower
    bound on the distance from the query to any object inside the MBR.
    """
    q = np.asarray(query, dtype=np.float64)
    nearest = np.clip(q, low, high)
    diff = nearest - q
    return float(np.dot(diff, diff))


def maxdist_sq(query: Sequence[float], low: np.ndarray, high: np.ndarray) -> float:
    """Squared distance from ``query`` to the farthest corner of the MBR."""
    q = np.asarray(query, dtype=np.float64)
    farthest = np.where(np.abs(q - low) > np.abs(q - high), low, high)
    diff = farthest - q
    return float(np.dot(diff, diff))


def minmaxdist_sq(
    query: Sequence[float], low: np.ndarray, high: np.ndarray
) -> float:
    """Squared ``MINMAXDIST`` of Roussopoulos et al.

    The minimum over dimensions ``k`` of the maximal distance to the face of
    the MBR nearest to the query along ``k``.  It upper-bounds the distance
    to the nearest *object* contained in the MBR (every face of an MBR must
    touch at least one object), which makes it a valid pruning bound for NN
    search: any MBR whose MINDIST exceeds another's MINMAXDIST cannot hold
    the nearest neighbor.
    """
    q = np.asarray(query, dtype=np.float64)
    mid = (low + high) / 2.0
    # rm[k]: the bound of dimension k closer to the query.
    rm = np.where(q <= mid, low, high)
    # rM[k]: the bound of dimension k farther from the query.
    r_max = np.where(q >= mid, low, high)
    far_sq = (q - r_max) ** 2
    near_sq = (q - rm) ** 2
    total_far = float(np.sum(far_sq))
    # For each k: use the near face along k, the far corners elsewhere.
    candidates = total_far - far_sq + near_sq
    return float(np.min(candidates))


def mindist_sq_arrays(
    query: Sequence[float], lows: np.ndarray, highs: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`mindist_sq` over ``(n, d)`` bound arrays."""
    q = np.asarray(query, dtype=np.float64)
    nearest = np.clip(q, lows, highs)
    diff = nearest - q
    return np.einsum("ij,ij->i", diff, diff)


def minmaxdist_sq_arrays(
    query: Sequence[float], lows: np.ndarray, highs: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`minmaxdist_sq` over ``(n, d)`` bound arrays."""
    q = np.asarray(query, dtype=np.float64)
    mid = (lows + highs) / 2.0
    rm = np.where(q <= mid, lows, highs)
    r_max = np.where(q >= mid, lows, highs)
    far_sq = (q - r_max) ** 2
    near_sq = (q - rm) ** 2
    total_far = np.sum(far_sq, axis=1, keepdims=True)
    candidates = total_far - far_sq + near_sq
    return np.min(candidates, axis=1)
