"""Minimum bounding hyper-rectangles (MBRs).

The paper approximates every NN-cell by its minimum bounding
(hyper-)rectangle (Definition 3) and stores those rectangles in an R-tree
family index.  This module provides the rectangle algebra every other layer
builds on: volume, margin, union, intersection, overlap volume, containment
and enlargement computations, both for single rectangles and for vectorised
arrays of rectangles (as used inside index nodes).

An MBR over ``d`` dimensions is represented by two ``float64`` vectors
``low`` and ``high`` with ``low <= high`` component-wise.  Degenerate
rectangles (zero extent in some dimension) are legal: a data *point* is the
degenerate rectangle ``MBR(p, p)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "MBR",
    "mbr_of_points",
    "union_all",
    "intersect_arrays",
    "contains_point_arrays",
    "overlap_volume_arrays",
    "total_pairwise_overlap",
]


class MBR:
    """An axis-aligned minimum bounding hyper-rectangle.

    Instances are immutable by convention: all operations return new
    rectangles.  ``low`` and ``high`` are stored as read-only numpy arrays.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]):
        low_arr = np.asarray(low, dtype=np.float64).copy()
        high_arr = np.asarray(high, dtype=np.float64).copy()
        if low_arr.ndim != 1 or high_arr.ndim != 1:
            raise ValueError("MBR bounds must be one-dimensional vectors")
        if low_arr.shape != high_arr.shape:
            raise ValueError(
                f"bound shapes differ: {low_arr.shape} vs {high_arr.shape}"
            )
        if low_arr.size == 0:
            raise ValueError("MBR must have at least one dimension")
        if np.any(low_arr > high_arr + 1e-12):
            raise ValueError(f"low > high: low={low_arr}, high={high_arr}")
        # Clamp tiny negative extents caused by floating point noise.
        high_arr = np.maximum(low_arr, high_arr)
        low_arr.setflags(write=False)
        high_arr.setflags(write=False)
        self.low = low_arr
        self.high = high_arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """Degenerate rectangle covering exactly one point."""
        return cls(point, point)

    @classmethod
    def unit_cube(cls, dim: int) -> "MBR":
        """The data space ``[0, 1]^d`` used throughout the paper."""
        if dim < 1:
            raise ValueError("dimension must be positive")
        return cls(np.zeros(dim), np.ones(dim))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.low.shape[0]

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths ``high - low``."""
        return self.high - self.low

    @property
    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    def volume(self) -> float:
        """Product of side lengths (zero for degenerate rectangles)."""
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion)."""
        return float(np.sum(self.extents))

    def is_degenerate(self, atol: float = 0.0) -> bool:
        """True if some dimension has (near-)zero extent."""
        return bool(np.any(self.extents <= atol))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float], atol: float = 0.0) -> bool:
        """True if ``point`` lies inside (within ``atol`` per axis)."""
        p = np.asarray(point, dtype=np.float64)
        return bool(
            np.all(self.low - atol <= p) and np.all(p <= self.high + atol)
        )

    def contains(self, other: "MBR", atol: float = 0.0) -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return bool(
            np.all(self.low - atol <= other.low)
            and np.all(other.high <= self.high + atol)
        )

    def intersects(self, other: "MBR", atol: float = 0.0) -> bool:
        """True if the rectangles share at least a boundary point."""
        return bool(
            np.all(self.low <= other.high + atol)
            and np.all(other.low <= self.high + atol)
        )

    def intersects_sphere(self, center: Sequence[float], radius: float) -> bool:
        """True if this rectangle intersects the closed ball ``B(c, r)``."""
        c = np.asarray(center, dtype=np.float64)
        nearest = np.clip(c, self.low, self.high)
        return bool(np.sum((nearest - c) ** 2) <= radius * radius + 1e-12)

    # ------------------------------------------------------------------
    # Combinations
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """Smallest rectangle covering both operands."""
        return MBR(np.minimum(self.low, other.low),
                   np.maximum(self.high, other.high))

    def union_point(self, point: Sequence[float]) -> "MBR":
        """Smallest rectangle covering this one and ``point``."""
        p = np.asarray(point, dtype=np.float64)
        return MBR(np.minimum(self.low, p), np.maximum(self.high, p))

    def intersection(self, other: "MBR") -> "MBR | None":
        """Intersection rectangle, or ``None`` when disjoint."""
        low = np.maximum(self.low, other.low)
        high = np.minimum(self.high, other.high)
        if np.any(low > high):
            return None
        return MBR(low, high)

    def overlap_volume(self, other: "MBR") -> float:
        """Volume of the intersection (0.0 when disjoint)."""
        sides = np.minimum(self.high, other.high) - np.maximum(
            self.low, other.low
        )
        if np.any(sides < 0.0):
            return 0.0
        return float(np.prod(sides))

    def enlargement(self, other: "MBR") -> float:
        """Volume increase needed to also cover ``other``."""
        return self.union(other).volume() - self.volume()

    def clipped_to(self, other: "MBR") -> "MBR | None":
        """Alias of :meth:`intersection` that reads better for clipping."""
        return self.intersection(other)

    def split_at(self, dim: int, value: float) -> "tuple[MBR, MBR]":
        """Split into (lower, upper) halves at ``value`` along ``dim``.

        ``value`` is clamped into the rectangle so both halves are valid
        (possibly degenerate) rectangles.
        """
        if not 0 <= dim < self.dim:
            raise IndexError(f"dimension {dim} out of range for {self.dim}-d MBR")
        value = float(np.clip(value, self.low[dim], self.high[dim]))
        low_high = self.high.copy()
        low_high[dim] = value
        up_low = self.low.copy()
        up_low[dim] = value
        return MBR(self.low, low_high), MBR(up_low, self.high)

    def grid_cell(self, counts: Sequence[int], index: Sequence[int]) -> "MBR":
        """The ``index``-th cell of the regular grid with ``counts`` splits.

        Used by the MBR decomposition (Definition 5): the rectangle is cut
        into ``counts[j]`` equal slabs along each decomposed dimension ``j``
        and the cell at multi-index ``index`` is returned.  Dimensions with
        ``counts[j] == 1`` are left whole.
        """
        counts_arr = np.asarray(counts, dtype=np.int64)
        index_arr = np.asarray(index, dtype=np.int64)
        if counts_arr.shape != (self.dim,) or index_arr.shape != (self.dim,):
            raise ValueError("counts and index must have one entry per dimension")
        if np.any(counts_arr < 1):
            raise ValueError("partition counts must be >= 1")
        if np.any(index_arr < 0) or np.any(index_arr >= counts_arr):
            raise ValueError(f"grid index {index_arr} out of range for {counts_arr}")
        step = self.extents / counts_arr
        low = self.low + index_arr * step
        high = self.low + (index_arr + 1) * step
        # Make the final slab end exactly at the rectangle boundary.
        high = np.where(index_arr + 1 == counts_arr, self.high, high)
        return MBR(low, high)

    # ------------------------------------------------------------------
    # Conversions / dunder protocol
    # ------------------------------------------------------------------
    def as_array(self) -> np.ndarray:
        """``(2, d)`` array ``[low, high]`` (copies)."""
        return np.stack([self.low, self.high])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(
            np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )

    def __hash__(self) -> int:
        return hash((self.low.tobytes(), self.high.tobytes()))

    def approx_equal(self, other: "MBR", atol: float = 1e-9) -> bool:
        """Equality up to ``atol`` per bound (float-tolerant compare)."""
        return bool(
            np.allclose(self.low, other.low, atol=atol)
            and np.allclose(self.high, other.high, atol=atol)
        )

    def __repr__(self) -> str:
        low = np.array2string(self.low, precision=4, separator=", ")
        high = np.array2string(self.high, precision=4, separator=", ")
        return f"MBR(low={low}, high={high})"


# ----------------------------------------------------------------------
# Free functions over collections of rectangles
# ----------------------------------------------------------------------

def mbr_of_points(points: np.ndarray) -> MBR:
    """Tightest rectangle covering all rows of ``points`` (``(n, d)``)."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    return MBR(pts.min(axis=0), pts.max(axis=0))


def union_all(rects: Iterable[MBR]) -> MBR:
    """Union of a non-empty iterable of rectangles."""
    it: Iterator[MBR] = iter(rects)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("union_all() requires at least one rectangle") from None
    low = first.low.copy()
    high = first.high.copy()
    for rect in it:
        np.minimum(low, rect.low, out=low)
        np.maximum(high, rect.high, out=high)
    return MBR(low, high)


def intersect_arrays(
    lows: np.ndarray, highs: np.ndarray, rect: MBR, atol: float = 0.0
) -> np.ndarray:
    """Boolean mask of rows of ``(lows, highs)`` intersecting ``rect``.

    ``lows``/``highs`` are ``(n, d)`` arrays — the vectorised node-entry
    layout of the index layer.
    """
    return np.logical_and(
        np.all(lows <= rect.high + atol, axis=1),
        np.all(rect.low <= highs + atol, axis=1),
    )


def contains_point_arrays(
    lows: np.ndarray, highs: np.ndarray, point: np.ndarray, atol: float = 0.0
) -> np.ndarray:
    """Boolean mask of rows whose rectangle contains ``point``."""
    p = np.asarray(point, dtype=np.float64)
    return np.logical_and(
        np.all(lows - atol <= p, axis=1), np.all(p <= highs + atol, axis=1)
    )


def overlap_volume_arrays(
    lows: np.ndarray, highs: np.ndarray, rect: MBR
) -> np.ndarray:
    """Vector of intersection volumes between each row and ``rect``."""
    sides = np.minimum(highs, rect.high) - np.maximum(lows, rect.low)
    sides = np.clip(sides, 0.0, None)
    return np.prod(sides, axis=1)


def total_pairwise_overlap(rects: Sequence[MBR]) -> float:
    """Sum of pairwise intersection volumes — the R-tree overlap measure.

    Quadratic in the number of rectangles; intended for node-sized or
    experiment-sized collections, not for whole databases.
    """
    if len(rects) < 2:
        return 0.0
    lows = np.stack([r.low for r in rects])
    highs = np.stack([r.high for r in rects])
    total = 0.0
    for i in range(len(rects) - 1):
        sides = np.minimum(highs[i + 1:], highs[i]) - np.maximum(
            lows[i + 1:], lows[i]
        )
        sides = np.clip(sides, 0.0, None)
        total += float(np.sum(np.prod(sides, axis=1)))
    return total
