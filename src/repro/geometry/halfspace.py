"""Half-space systems: the geometric form of NN-cell constraints.

An (order-1) NN-cell of a data point ``P`` is the set of query points ``x``
in the data space with ``d(x, P) <= d(x, Q)`` for every other data point
``Q`` (Definition 2 of the paper).  For the Euclidean metric each such
condition is the *bisector half-space*

    ``2 (Q - P) . x  <=  |Q|^2 - |P|^2``

so a NN-cell is the intersection of at most ``N - 1`` half-spaces with the
(box-shaped) data space.  This module represents such systems as dense
``A x <= b`` matrices plus a bounding box, and provides the predicates the
core layer needs: membership tests, violation counts, and conservative
"box inside half-space" tests used by the dynamic-insert path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .mbr import MBR

__all__ = [
    "HalfspaceSystem",
    "bisector",
    "bisectors_from_points",
    "box_inside_halfspace",
    "box_intersects_halfspace",
]


def bisector(p: Sequence[float], q: Sequence[float]) -> "tuple[np.ndarray, float]":
    """Half-space ``a . x <= b`` of points at least as close to ``p`` as to
    ``q``: ``a = 2 (q - p)``, ``b = |q|^2 - |p|^2``."""
    p_arr = np.asarray(p, dtype=np.float64)
    q_arr = np.asarray(q, dtype=np.float64)
    a = 2.0 * (q_arr - p_arr)
    b = float(np.dot(q_arr, q_arr) - np.dot(p_arr, p_arr))
    return a, b


def bisectors_from_points(
    center: Sequence[float],
    others: np.ndarray,
    weights: "np.ndarray | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised bisector constraints of ``center`` against each row of
    ``others``.  Returns ``(A, b)`` with shapes ``(n, d)`` and ``(n,)``.

    ``weights`` switches to the weighted Euclidean metric
    ``d_W(x, y)^2 = sum_i w_i (x_i - y_i)^2`` — its bisectors are still
    hyperplanes (``a = 2 w (q - p)``, ``b = w . (q^2 - p^2)``), so the
    whole NN-cell machinery carries over unchanged.
    """
    c = np.asarray(center, dtype=np.float64)
    o = np.asarray(others, dtype=np.float64)
    if o.ndim != 2:
        raise ValueError("others must be an (n, d) array")
    if weights is None:
        a_mat = 2.0 * (o - c)
        b_vec = np.einsum("ij,ij->i", o, o) - float(np.dot(c, c))
        return a_mat, b_vec
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != c.shape or np.any(w <= 0.0):
        raise ValueError("weights must be positive, one per dimension")
    a_mat = 2.0 * w * (o - c)
    b_vec = (o * o) @ w - float(np.dot(w, c * c))
    return a_mat, b_vec


def box_inside_halfspace(
    box: MBR, a: np.ndarray, b: float, atol: float = 1e-9
) -> bool:
    """True if every point of ``box`` satisfies ``a . x <= b``.

    The maximum of a linear function over a box is attained at the corner
    picking ``high`` where the coefficient is positive and ``low`` where it
    is negative, so no LP is needed.
    """
    worst = float(np.dot(np.where(a > 0.0, box.high, box.low), a))
    return worst <= b + atol


def box_intersects_halfspace(
    box: MBR, a: np.ndarray, b: float, atol: float = 1e-9
) -> bool:
    """True if some point of ``box`` satisfies ``a . x <= b``."""
    best = float(np.dot(np.where(a > 0.0, box.low, box.high), a))
    return best <= b + atol


class HalfspaceSystem:
    """A polytope ``{x : A x <= b} ∩ box`` (a bounded half-space system).

    Instances hold the bisector constraints of one NN-cell.  The associated
    ``point_ids`` record, for each row of ``A``, which database point
    generated the bisector — the dynamic update path uses this to find cells
    that referenced a deleted point.
    """

    __slots__ = ("a", "b", "box", "point_ids")

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        box: MBR,
        point_ids: "np.ndarray | None" = None,
    ):
        a_arr = np.asarray(a, dtype=np.float64)
        b_arr = np.asarray(b, dtype=np.float64)
        if a_arr.ndim != 2:
            raise ValueError("A must be an (n, d) matrix")
        if b_arr.shape != (a_arr.shape[0],):
            raise ValueError("b must have one entry per constraint row")
        if box.dim != a_arr.shape[1] and a_arr.shape[0] > 0:
            raise ValueError(
                f"box dimension {box.dim} != constraint dimension {a_arr.shape[1]}"
            )
        if point_ids is None:
            point_ids = np.full(a_arr.shape[0], -1, dtype=np.int64)
        else:
            point_ids = np.asarray(point_ids, dtype=np.int64)
            if point_ids.shape != (a_arr.shape[0],):
                raise ValueError("point_ids must have one entry per constraint")
        self.a = a_arr
        self.b = b_arr
        self.box = box
        self.point_ids = point_ids

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, box: MBR) -> "HalfspaceSystem":
        """A system with no bisector constraints — the whole box."""
        return cls(np.zeros((0, box.dim)), np.zeros(0), box)

    @classmethod
    def nn_cell(
        cls,
        center: Sequence[float],
        others: np.ndarray,
        box: MBR,
        point_ids: "np.ndarray | None" = None,
    ) -> "HalfspaceSystem":
        """Constraint system of the NN-cell of ``center`` against
        ``others`` inside ``box``."""
        a_mat, b_vec = bisectors_from_points(center, others)
        return cls(a_mat, b_vec, box, point_ids)

    # ------------------------------------------------------------------
    @property
    def n_constraints(self) -> int:
        return self.a.shape[0]

    @property
    def dim(self) -> int:
        return self.box.dim

    def contains(self, x: Sequence[float], atol: float = 1e-9) -> bool:
        """Membership test: inside the box and satisfying every bisector."""
        x_arr = np.asarray(x, dtype=np.float64)
        if not self.box.contains_point(x_arr, atol=atol):
            return False
        if self.n_constraints == 0:
            return True
        return bool(np.all(self.a @ x_arr <= self.b + atol))

    def violations(self, x: Sequence[float], atol: float = 1e-9) -> int:
        """Number of bisector constraints violated at ``x``."""
        if self.n_constraints == 0:
            return 0
        x_arr = np.asarray(x, dtype=np.float64)
        return int(np.sum(self.a @ x_arr > self.b + atol))

    def with_constraint(
        self, a: np.ndarray, b: float, point_id: int = -1
    ) -> "HalfspaceSystem":
        """New system with one additional half-space appended."""
        a_new = np.vstack([self.a, np.asarray(a, dtype=np.float64)[None, :]])
        b_new = np.append(self.b, float(b))
        ids_new = np.append(self.point_ids, np.int64(point_id))
        return HalfspaceSystem(a_new, b_new, self.box, ids_new)

    def without_point(self, point_id: int) -> "HalfspaceSystem":
        """New system with every bisector generated by ``point_id`` removed."""
        keep = self.point_ids != point_id
        return HalfspaceSystem(
            self.a[keep], self.b[keep], self.box, self.point_ids[keep]
        )

    def clipped_to(self, box: MBR) -> "HalfspaceSystem":
        """Same bisectors, tighter bounding box (used by decomposition)."""
        inner = self.box.intersection(box)
        if inner is None:
            raise ValueError("clip box does not intersect the system's box")
        return HalfspaceSystem(self.a, self.b, inner, self.point_ids)

    def reduced_to_box(self, box: MBR) -> "HalfspaceSystem":
        """Clip to ``box`` and drop constraints that cannot cut it.

        A constraint whose half-space already contains the whole clip box
        is redundant inside it; dropping such rows leaves the feasible set
        within ``box`` unchanged, so LP optima over the reduced system are
        *exact* for the clipped cell.  This is the workhorse behind the
        fast Correct-selector path: most of the ``N - 1`` bisectors of a
        cell never touch its neighborhood.
        """
        inner = self.box.intersection(box)
        if inner is None:
            raise ValueError("clip box does not intersect the system's box")
        if self.n_constraints == 0:
            return HalfspaceSystem(self.a, self.b, inner, self.point_ids)
        # Worst corner of the box per constraint (vectorised over rows).
        worst = np.where(self.a > 0.0, inner.high, inner.low)
        values = np.einsum("ij,ij->i", self.a, worst)
        keep = values > self.b + 1e-12
        return HalfspaceSystem(
            self.a[keep], self.b[keep], inner, self.point_ids[keep]
        )

    def distances_to_planes(self, x: Sequence[float]) -> np.ndarray:
        """Euclidean distance from ``x`` to each constraint hyperplane
        (used to pick the tightest bisectors for pre-approximation)."""
        if self.n_constraints == 0:
            return np.zeros(0)
        x_arr = np.asarray(x, dtype=np.float64)
        norms = np.linalg.norm(self.a, axis=1)
        safe = np.where(norms > 0.0, norms, 1.0)
        return np.abs(self.b - self.a @ x_arr) / safe

    def references(self, point_id: int) -> bool:
        """True if any constraint row was generated by ``point_id``."""
        return bool(np.any(self.point_ids == point_id))

    def __repr__(self) -> str:
        return (
            f"HalfspaceSystem(n_constraints={self.n_constraints}, "
            f"dim={self.dim})"
        )
