"""Geometric substrate: rectangles, distances, half-space systems."""

from .distance import (
    distances_to_points,
    euclidean,
    euclidean_sq,
    maxdist_sq,
    mindist_sq,
    mindist_sq_arrays,
    minmaxdist_sq,
    minmaxdist_sq_arrays,
    nearest_of,
    pairwise_sq,
)
from .halfspace import (
    HalfspaceSystem,
    bisector,
    bisectors_from_points,
    box_inside_halfspace,
    box_intersects_halfspace,
)
from .mbr import (
    MBR,
    contains_point_arrays,
    intersect_arrays,
    mbr_of_points,
    overlap_volume_arrays,
    total_pairwise_overlap,
    union_all,
)

__all__ = [
    "MBR",
    "HalfspaceSystem",
    "bisector",
    "bisectors_from_points",
    "box_inside_halfspace",
    "box_intersects_halfspace",
    "contains_point_arrays",
    "distances_to_points",
    "euclidean",
    "euclidean_sq",
    "intersect_arrays",
    "maxdist_sq",
    "mbr_of_points",
    "mindist_sq",
    "mindist_sq_arrays",
    "minmaxdist_sq",
    "minmaxdist_sq_arrays",
    "nearest_of",
    "overlap_volume_arrays",
    "pairwise_sq",
    "total_pairwise_overlap",
    "union_all",
]
