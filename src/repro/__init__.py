"""repro — Voronoi NN-cell nearest-neighbor search.

A production-quality Python reproduction of

    S. Berchtold, B. Ertl, D. A. Keim, H.-P. Kriegel, T. Seidl:
    "Fast Nearest Neighbor Search in High-Dimensional Space",
    Proc. 14th Int. Conf. on Data Engineering (ICDE), 1998.

The paper's idea: *precompute the solution space* of nearest-neighbor
search.  Every database point's NN-cell (its order-1 Voronoi cell) is
approximated by a minimum bounding rectangle via linear programming,
optionally decomposed along its most oblique dimensions, and stored in an
X-tree — turning every NN query into a cheap point query.

Quickstart::

    import numpy as np
    from repro import NNCellIndex, BuildConfig, SelectorKind, uniform_points

    points = uniform_points(n=2000, dim=8, seed=7)
    index = NNCellIndex.build(points, BuildConfig(selector=SelectorKind.SPHERE))
    neighbor_id, distance, info = index.nearest(np.full(8, 0.5))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured reproduction record.
"""

from .core import (
    BuildConfig,
    CandidateSelector,
    DecompositionConfig,
    NNCellIndex,
    OrderKIndex,
    QueryInfo,
    SelectorKind,
    SelectorParams,
    WeightedNNCellIndex,
    approximate_cell,
    average_overlap,
    cell_system,
    decompose_cell,
    expected_candidates,
    load_any_index,
    load_index,
    load_sharded_index,
    measured_overlap,
    quality_to_performance,
    save_index,
    save_sharded_index,
    sphere_radius,
)
from .data import (
    clustered_points,
    fourier_points,
    grid_points,
    make_dataset,
    query_points,
    sparse_points,
    uniform_points,
)
from .geometry import MBR, HalfspaceSystem
from .index import (
    LinearScan,
    NNResult,
    RStarTree,
    XTree,
    bulk_load,
    hs_k_nearest,
    hs_nearest,
    rkv_nearest,
)
from . import obs
from .engine import BatchQueryInfo
from .serve import QueryResult, QueryService, ServeConfig
from .shard import ShardConfig, ShardedNNCellIndex
from .storage import AccessStats, PageManager

__version__ = "1.0.0"

__all__ = [
    "AccessStats",
    "BatchQueryInfo",
    "BuildConfig",
    "CandidateSelector",
    "DecompositionConfig",
    "HalfspaceSystem",
    "LinearScan",
    "MBR",
    "NNCellIndex",
    "NNResult",
    "OrderKIndex",
    "PageManager",
    "QueryInfo",
    "QueryResult",
    "QueryService",
    "RStarTree",
    "ServeConfig",
    "SelectorKind",
    "SelectorParams",
    "ShardConfig",
    "ShardedNNCellIndex",
    "WeightedNNCellIndex",
    "XTree",
    "approximate_cell",
    "average_overlap",
    "bulk_load",
    "cell_system",
    "clustered_points",
    "decompose_cell",
    "expected_candidates",
    "fourier_points",
    "grid_points",
    "hs_k_nearest",
    "hs_nearest",
    "load_any_index",
    "load_index",
    "load_sharded_index",
    "make_dataset",
    "measured_overlap",
    "obs",
    "save_index",
    "save_sharded_index",
    "quality_to_performance",
    "query_points",
    "rkv_nearest",
    "sparse_points",
    "sphere_radius",
    "uniform_points",
]
