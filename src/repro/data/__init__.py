"""Workload generators: the paper's synthetic distributions and a
synthetic substitute for its proprietary Fourier dataset."""

from .fourier import fourier_points, fourier_signals
from .registry import dataset_names, make_dataset, register_dataset
from .synthetic import (
    clustered_points,
    diagonal_points,
    grid_points,
    query_points,
    sparse_points,
    uniform_points,
)

__all__ = [
    "clustered_points",
    "dataset_names",
    "diagonal_points",
    "fourier_points",
    "fourier_signals",
    "grid_points",
    "make_dataset",
    "query_points",
    "register_dataset",
    "sparse_points",
    "uniform_points",
]
