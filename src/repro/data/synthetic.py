"""Synthetic point distributions from the paper's Figure 2 and Section 4.

The paper distinguishes (and we generate):

* **uniform** — coordinates drawn independently and uniformly; uniform in
  every axis projection but *not* uniform in multidimensional space (the
  bulk of the evaluation uses this);
* **multidimensional uniform** (``grid_points``) — a regular grid where
  every equal-size cell holds one point: the *best case* for the NN-cell
  approach, since MBR approximations coincide with the cells;
* **sparse** — few, widely scattered points whose NN-cells stretch across
  most of the data space: the *worst case*, with near-total approximation
  overlap;
* **clustered** — Gaussian clusters, the structure the paper ascribes to
  real high-dimensional data ("clusters are likely to occur").

All generators return an ``(n, d)`` float64 array inside the unit cube and
take an integer ``seed`` for reproducibility.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_points",
    "grid_points",
    "sparse_points",
    "diagonal_points",
    "clustered_points",
    "query_points",
]


def uniform_points(n: int, dim: int, seed: int = 0) -> np.ndarray:
    """``n`` points with iid uniform coordinates in ``[0, 1]^dim``."""
    _check(n, dim)
    rng = np.random.default_rng(seed)
    return rng.uniform(size=(n, dim))


def grid_points(per_axis: int, dim: int, jitter: float = 0.0,
                seed: int = 0) -> np.ndarray:
    """A regular multidimensional-uniform grid of ``per_axis ** dim`` points.

    Points sit at cell centres of the regular partition of the unit cube
    into ``per_axis`` slices per axis, optionally jittered by a uniform
    offset of up to ``jitter`` cell-halves (``jitter=0`` reproduces the
    paper's ideal case where NN-cells equal their MBRs).
    """
    if per_axis < 1:
        raise ValueError("per_axis must be >= 1")
    _check(1, dim)
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be within [0, 1]")
    axes = (np.arange(per_axis) + 0.5) / per_axis
    mesh = np.meshgrid(*([axes] * dim), indexing="ij")
    pts = np.stack([m.ravel() for m in mesh], axis=1)
    if jitter > 0.0:
        rng = np.random.default_rng(seed)
        half_cell = 0.5 / per_axis
        pts = pts + rng.uniform(
            -jitter * half_cell, jitter * half_cell, size=pts.shape
        )
        np.clip(pts, 0.0, 1.0, out=pts)
    return pts


def sparse_points(n: int, dim: int, seed: int = 0,
                  spread: float = 1.0) -> np.ndarray:
    """Few, far-apart points: a greedy farthest-point subsample.

    Draws ``8 n`` uniform candidates and keeps the ``n`` that greedily
    maximise the minimum pairwise distance, yielding the sparse population
    whose NN-cell approximations degenerate toward the whole data space
    (Figure 2e/f).  ``spread < 1`` shrinks the population toward the cube
    centre, sparsifying the boundary region as well.
    """
    _check(n, dim)
    rng = np.random.default_rng(seed)
    candidates = rng.uniform(size=(max(8 * n, n + 1), dim))
    chosen = [int(rng.integers(candidates.shape[0]))]
    min_dist = np.linalg.norm(candidates - candidates[chosen[0]], axis=1)
    for __ in range(n - 1):
        nxt = int(np.argmax(min_dist))
        chosen.append(nxt)
        dist = np.linalg.norm(candidates - candidates[nxt], axis=1)
        np.minimum(min_dist, dist, out=min_dist)
    pts = candidates[chosen]
    if spread != 1.0:
        pts = 0.5 + (pts - 0.5) * spread
    return pts


def diagonal_points(n: int, dim: int, jitter: float = 0.02,
                    seed: int = 0) -> np.ndarray:
    """Points along the main diagonal of the unit cube.

    The extreme *sparse* population of Figure 2e/f: the NN-cells of
    diagonal points are slabs orthogonal to the diagonal, maximally
    oblique to every axis, so their MBR approximations degenerate toward
    the whole data space — the worst case for the (undecomposed) NN-cell
    approach and the best showcase for Section 3's decomposition.
    """
    _check(n, dim)
    if jitter < 0.0:
        raise ValueError("jitter must be >= 0")
    rng = np.random.default_rng(seed)
    base = (np.arange(n) + 0.5) / n
    pts = np.tile(base[:, None], (1, dim))
    if jitter > 0.0:
        pts = pts + rng.uniform(-jitter, jitter, size=pts.shape)
    np.clip(pts, 0.0, 1.0, out=pts)
    return pts


def clustered_points(
    n: int,
    dim: int,
    n_clusters: int = 10,
    cluster_std: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian-cluster mixture clipped to the unit cube."""
    _check(n, dim)
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    if cluster_std <= 0.0:
        raise ValueError("cluster_std must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15, 0.85, size=(n_clusters, dim))
    assignment = rng.integers(n_clusters, size=n)
    pts = centers[assignment] + rng.normal(scale=cluster_std, size=(n, dim))
    np.clip(pts, 0.0, 1.0, out=pts)
    return pts


def query_points(n: int, dim: int, seed: int = 1_000_003) -> np.ndarray:
    """Uniform query workload, seeded apart from the data by default."""
    return uniform_points(n, dim, seed=seed)


def _check(n: int, dim: int) -> None:
    if n < 1:
        raise ValueError("n must be >= 1")
    if dim < 1:
        raise ValueError("dim must be >= 1")
