"""Synthetic Fourier feature vectors.

The paper's real-data experiments use a proprietary database of "Fourier
points in high-dimensional space (d = 8)" — Fourier coefficients of shape /
signal data, a standard 1990s feature transformation for similarity search.
We do not have that database, so we synthesise its statistical equivalent:

1. draw random smooth 1-D signals (an AR(1) random walk over ``signal_len``
   samples, with per-signal amplitude and drift so the population is
   heterogeneous and clustered, like real measurement collections);
2. take the real FFT and keep the magnitudes of the first ``dim``
   non-constant coefficients — low-frequency energy dominates smooth
   signals, so coordinates are *correlated* and strongly *non-uniform*;
3. min-max normalise each coordinate into ``[0, 1]`` over the population.

This reproduces the property the paper's Figures 11-12 rely on: real
feature data is clustered, which makes NN-cell MBR approximations tighter
than in the uniform case.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fourier_points", "fourier_signals"]


def fourier_signals(
    n: int,
    signal_len: int = 64,
    smoothness: float = 0.9,
    seed: int = 0,
) -> np.ndarray:
    """``(n, signal_len)`` smooth random signals (AR(1) processes)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if signal_len < 4:
        raise ValueError("signal_len must be >= 4")
    if not 0.0 <= smoothness < 1.0:
        raise ValueError("smoothness must be within [0, 1)")
    rng = np.random.default_rng(seed)
    noise = rng.normal(size=(n, signal_len))
    signals = np.empty_like(noise)
    signals[:, 0] = noise[:, 0]
    for t in range(1, signal_len):
        signals[:, t] = smoothness * signals[:, t - 1] + noise[:, t]
    # Heterogeneous population: per-signal amplitude and drift classes.
    amplitude = rng.lognormal(mean=0.0, sigma=0.6, size=(n, 1))
    drift = rng.choice([-2.0, 0.0, 2.0], size=(n, 1))
    ramp = np.linspace(0.0, 1.0, signal_len)[None, :]
    return amplitude * signals + drift * ramp


def fourier_points(
    n: int,
    dim: int = 8,
    signal_len: int = 64,
    smoothness: float = 0.9,
    seed: int = 0,
) -> np.ndarray:
    """``(n, dim)`` Fourier feature vectors normalised into the unit cube.

    ``dim = 8`` matches the paper's real dataset.  Duplicate feature
    vectors (possible for tiny populations) are perturbed by a negligible
    jitter so downstream Voronoi cells are well defined.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if signal_len < 2 * (dim + 1):
        raise ValueError("signal_len too short for the requested dim")
    signals = fourier_signals(n, signal_len, smoothness, seed)
    spectrum = np.fft.rfft(signals, axis=1)
    # Skip the DC term; keep the first `dim` harmonics' magnitudes.
    features = np.abs(spectrum[:, 1:dim + 1])

    lo = features.min(axis=0)
    hi = features.max(axis=0)
    span = np.where(hi - lo > 0.0, hi - lo, 1.0)
    points = (features - lo) / span

    points = _deduplicate(points, seed)
    return points


def _deduplicate(points: np.ndarray, seed: int) -> np.ndarray:
    """Jitter exact duplicates (keeps Voronoi cells full-dimensional)."""
    __, first_index = np.unique(points, axis=0, return_index=True)
    if first_index.shape[0] == points.shape[0]:
        return points
    rng = np.random.default_rng(seed + 1)
    dup_mask = np.ones(points.shape[0], dtype=bool)
    dup_mask[first_index] = False
    points = points.copy()
    points[dup_mask] += rng.uniform(-1e-9, 1e-9, size=(int(dup_mask.sum()),
                                                       points.shape[1]))
    np.clip(points, 0.0, 1.0, out=points)
    return points
