"""Named dataset factory used by benchmarks and examples.

Keeps experiment scripts declarative: a dataset is a name plus keyword
parameters, resolved here to a generator call.  New generators register
with :func:`register_dataset`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .fourier import fourier_points
from .synthetic import (
    clustered_points,
    diagonal_points,
    grid_points,
    sparse_points,
    uniform_points,
)

__all__ = ["make_dataset", "register_dataset", "dataset_names"]

_REGISTRY: "Dict[str, Callable[..., np.ndarray]]" = {}


def register_dataset(name: str, factory: "Callable[..., np.ndarray]") -> None:
    """Register a dataset factory under ``name`` (overwrites silently so
    experiments can shadow built-ins with custom workloads)."""
    if not name:
        raise ValueError("dataset name must be non-empty")
    _REGISTRY[name] = factory


def dataset_names() -> "list[str]":
    """Registered dataset names, sorted."""
    return sorted(_REGISTRY)


def make_dataset(name: str, **params) -> np.ndarray:
    """Instantiate the dataset registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {dataset_names()}"
        ) from None
    return factory(**params)


register_dataset("uniform", uniform_points)
register_dataset("grid", grid_points)
register_dataset("sparse", sparse_points)
register_dataset("clustered", clustered_points)
register_dataset("diagonal", diagonal_points)
register_dataset("fourier", fourier_points)
