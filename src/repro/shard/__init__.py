"""Horizontal scaling layer: sharded solution spaces, exact answers.

``repro.shard`` partitions the database across N independent
:class:`~repro.core.nncell_index.NNCellIndex` shards and answers
queries by concurrent scatter-gather with an exact k-merge — results
are bit-identical to an unsharded index over the same points.  See
``docs/sharding.md`` for the partitioners, the exactness argument and
tuning guidance.
"""

from .partition import (
    PARTITIONER_KINDS,
    HashPartitioner,
    HilbertRangePartitioner,
    make_partitioner,
    partitioner_from_manifest,
)
from .sharded import ShardConfig, ShardedNNCellIndex

__all__ = [
    "PARTITIONER_KINDS",
    "HashPartitioner",
    "HilbertRangePartitioner",
    "ShardConfig",
    "ShardedNNCellIndex",
    "make_partitioner",
    "partitioner_from_manifest",
]
