"""Horizontal scaling layer: sharded solution spaces, exact answers.

``repro.shard`` partitions the database across N independent
:class:`~repro.core.nncell_index.NNCellIndex` shards and answers
queries by concurrent scatter-gather with an exact k-merge — results
are bit-identical to an unsharded index over the same points.  See
``docs/sharding.md`` for the partitioners, the exactness argument and
tuning guidance.

The scatter is fault-tolerant when a
:class:`~repro.shard.resilience.ResilienceConfig` is installed
(:meth:`ShardedNNCellIndex.set_resilience`): per-probe timeouts,
exponential-backoff retries, hedged duplicate probes, and — under
``allow_partial`` — explicitly *degraded* answers naming their missing
shards instead of failed queries.  Failures are typed
(:mod:`repro.shard.errors`); the policy and gather loop live in
:mod:`repro.shard.resilience`; ``docs/resilience.md`` has the contract.
"""

from .errors import AllShardsFailed, ShardError, ShardProbeError
from .partition import (
    PARTITIONER_KINDS,
    HashPartitioner,
    HilbertRangePartitioner,
    make_partitioner,
    partitioner_from_manifest,
)
from .resilience import ResilienceConfig, ScatterReport
from .sharded import ShardConfig, ShardedNNCellIndex

__all__ = [
    "PARTITIONER_KINDS",
    "AllShardsFailed",
    "HashPartitioner",
    "HilbertRangePartitioner",
    "ResilienceConfig",
    "ScatterReport",
    "ShardConfig",
    "ShardError",
    "ShardProbeError",
    "ShardedNNCellIndex",
    "make_partitioner",
    "partitioner_from_manifest",
]
