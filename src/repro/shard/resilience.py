"""Tail-tolerant scatter: timeouts, retries, hedges, partial answers.

The exact scatter-gather of :class:`~repro.shard.ShardedNNCellIndex`
is only as fast — and as available — as its slowest probe.  This module
supplies the mitigation policy and the gather loop that enforces it:

* **Per-probe timeouts** (``probe_timeout_ms``): an attempt that
  outlives its budget is abandoned (the probe thread unwinds on its
  own; its late answer is discarded) and the shard moves on.
* **Exponential-backoff retries** (``max_retries`` /
  ``backoff_base_ms`` / ``backoff_factor``): a timed-out or raising
  attempt is re-submitted after ``base * factor**(k-1)`` — probes are
  pure reads of an immutable index, so a retry is always safe.
* **Hedged probes** (``hedge_after_ms``): an attempt still unanswered
  after the hedge delay gets a concurrent duplicate; the first to
  finish wins and the loser's answer is discarded unread.  Hedging
  converts a per-attempt slow probability *p* into *p²* — the classic
  tail-at-scale move.
* **Graceful degradation** (``allow_partial``): a shard whose retries
  are exhausted is recorded as a casualty and the gather answers from
  the survivors, explicitly marked degraded with the casualty list —
  instead of failing the whole query.  Without ``allow_partial`` the
  gather raises a typed :class:`~repro.shard.errors.ShardProbeError`.

Delivery is exactly-once per shard by construction: a shard leaves the
pending set the moment its first successful attempt resolves, and every
other in-flight attempt for it (hedge twin, abandoned timeout) finds
the shard already resolved and is dropped.  The property suite
(``tests/shard/test_resilience_property.py``) asserts both this and the
never-silently-wrong contract under arbitrary fault schedules.

Every decision is counted: ``shard.retry`` / ``shard.hedge`` /
``shard.timeout`` metrics here, ``shard.degraded`` at the merge (in
:mod:`repro.shard.sharded`).  Tuning guidance: ``docs/resilience.md``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics
from ..obs.metrics import labeled
from .errors import AllShardsFailed, ShardProbeError

__all__ = ["ResilienceConfig", "ScatterReport", "resilient_gather"]

#: Reasons a shard can fail permanently.
REASON_TIMEOUT = "timeout"
REASON_ERROR = "error"


@dataclass(frozen=True)
class ResilienceConfig:
    """The scatter-gather mitigation policy of one sharded index.

    Everything defaults to *off*/strict: no timeout, no hedging, two
    retries against raised exceptions, completeness required.  The
    serve CLI surfaces the three load-bearing knobs as
    ``--shard-timeout-ms`` / ``--hedge-after-ms`` / ``--allow-partial``.
    """

    #: Per-attempt budget, milliseconds; ``None`` waits forever (an
    #: exception still fails the attempt immediately).
    probe_timeout_ms: "Optional[float]" = None
    #: Extra attempts after the first, per shard.
    max_retries: int = 2
    #: Backoff before retry ``k``: ``backoff_base_ms * factor**(k-1)``.
    backoff_base_ms: float = 1.0
    backoff_factor: float = 2.0
    #: Launch a duplicate probe this long into an unanswered attempt;
    #: ``None`` disables hedging.
    hedge_after_ms: "Optional[float]" = None
    #: Answer degraded from the surviving shards instead of raising
    #: when some (not all) shards fail permanently.
    allow_partial: bool = False

    def __post_init__(self):
        if self.probe_timeout_ms is not None and self.probe_timeout_ms <= 0:
            raise ValueError("probe_timeout_ms must be > 0 or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_ms < 0.0:
            raise ValueError("backoff_base_ms must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.hedge_after_ms is not None and self.hedge_after_ms <= 0:
            raise ValueError("hedge_after_ms must be > 0 or None")

    def backoff_s(self, attempt: int) -> float:
        """Seconds to wait before starting attempt ``attempt`` (1-based
        retries: attempt 2 is the first retry)."""
        return (
            self.backoff_base_ms
            * self.backoff_factor ** max(0, attempt - 2)
        ) / 1e3


@dataclass(frozen=True)
class ScatterReport:
    """What one resilient gather did: who answered, who did not, and
    how hard the mitigation had to work."""

    #: Live shards the gather probed.
    n_shards: int
    #: Shard ids that answered, ascending.
    answered: "Tuple[int, ...]"
    #: ``(shard id, reason)`` permanent casualties, ascending by shard.
    failed: "Tuple[Tuple[int, str], ...]" = ()
    retries: int = 0
    hedges: int = 0
    timeouts: int = 0

    @property
    def degraded(self) -> bool:
        """Whether the answer is missing any probed shard."""
        return bool(self.failed)

    @property
    def shards_answered(self) -> int:
        return len(self.answered)

    @property
    def failed_shards(self) -> "Tuple[int, ...]":
        return tuple(s for s, __ in self.failed)


#: Clean (non-resilient) gathers share one constant all-answered report
#: shape via this helper.
def complete_report(shard_ids: "Sequence[int]") -> ScatterReport:
    """The report of a gather in which every probed shard answered."""
    ids = tuple(sorted(int(s) for s in shard_ids))
    return ScatterReport(n_shards=len(ids), answered=ids)


class _ShardState:
    """Gather-loop bookkeeping of one shard's attempt lifecycle."""

    __slots__ = (
        "shard", "futures", "attempts", "deadline", "hedge_at", "hedged",
        "backoff_until",
    )

    def __init__(self, shard: int):
        self.shard = shard
        self.futures: "List[Future]" = []
        self.attempts = 0
        self.deadline: "Optional[float]" = None
        self.hedge_at: "Optional[float]" = None
        self.hedged = False
        self.backoff_until: "Optional[float]" = None


def resilient_gather(
    shard_ids: "Sequence[int]",
    submit: "Callable[[int], Future]",
    config: ResilienceConfig,
) -> "Tuple[List[Tuple[int, object]], ScatterReport]":
    """Probe every shard under the mitigation policy; gather survivors.

    ``submit(shard_id)`` launches one probe attempt on the scatter pool
    and returns its future (the caller wraps tracing/chaos/metrics).
    Returns ``(results, report)`` with ``results`` in ascending shard
    order.  Raises :class:`ShardProbeError` when completeness is
    required and violated, :class:`AllShardsFailed` when nobody
    answered (regardless of ``allow_partial``).
    """
    timeout_s = (
        None if config.probe_timeout_ms is None
        else config.probe_timeout_ms / 1e3
    )
    hedge_s = (
        None if config.hedge_after_ms is None
        else config.hedge_after_ms / 1e3
    )

    pending: "Dict[int, _ShardState]" = {}
    results: "Dict[int, object]" = {}
    failed: "List[Tuple[int, str]]" = []
    retries = hedges = timeouts = 0

    def start_attempt(state: _ShardState, now: float) -> None:
        state.attempts += 1
        state.backoff_until = None
        state.hedged = False
        state.deadline = None if timeout_s is None else now + timeout_s
        state.hedge_at = None if hedge_s is None else now + hedge_s
        state.futures = [submit(state.shard)]

    def attempt_failed(state: _ShardState, reason: str, now: float) -> None:
        nonlocal retries
        for future in state.futures:
            future.cancel()  # best effort; running attempts just unwind
        state.futures = []
        if state.attempts <= config.max_retries:
            retries += 1
            metrics.inc(labeled("shard.retry", shard=str(state.shard)))
            state.backoff_until = now + config.backoff_s(state.attempts + 1)
            state.deadline = None
            state.hedge_at = None
        else:
            del pending[state.shard]
            failed.append((state.shard, reason))
            if not config.allow_partial:
                raise ShardProbeError(sorted(failed), len(shard_ids))

    now = time.monotonic()
    for shard in shard_ids:
        state = _ShardState(int(shard))
        pending[state.shard] = state
        start_attempt(state, now)

    while pending:
        now = time.monotonic()
        next_event: "Optional[float]" = None

        for state in list(pending.values()):
            # 1. Harvest finished futures: first success resolves the
            #    shard; an attempt whose futures ALL raised has failed.
            #    (Counted fresh each pass — a hedged attempt with one
            #    raised and one running future must keep waiting.)
            resolved = False
            raised = 0
            for future in state.futures:
                if future.cancelled() or not future.done():
                    continue
                if future.exception() is None:
                    results[state.shard] = future.result()
                    del pending[state.shard]
                    resolved = True
                    break
                raised += 1
            if resolved:
                continue
            if state.futures and raised >= len(state.futures):
                attempt_failed(state, REASON_ERROR, now)

        for state in list(pending.values()):
            now = time.monotonic()
            # 2. Backoff expiry -> next attempt.
            if state.backoff_until is not None:
                if now >= state.backoff_until:
                    start_attempt(state, now)
                else:
                    next_event = _min_event(next_event, state.backoff_until)
                    continue
            # 3. Attempt timeout.
            if state.deadline is not None and now >= state.deadline:
                timeouts += 1
                metrics.inc(labeled("shard.timeout", shard=str(state.shard)))
                attempt_failed(state, REASON_TIMEOUT, now)
                if state.backoff_until is not None:
                    next_event = _min_event(next_event, state.backoff_until)
                continue
            next_event = _min_event(next_event, state.deadline)
            # 4. Hedge launch.
            if state.hedge_at is not None and not state.hedged:
                if now >= state.hedge_at:
                    state.hedged = True
                    hedges += 1
                    metrics.inc(labeled("shard.hedge", shard=str(state.shard)))
                    state.futures.append(submit(state.shard))
                else:
                    next_event = _min_event(next_event, state.hedge_at)

        live = [
            future
            for state in pending.values()
            for future in state.futures
            if not future.done()
        ]
        if not pending:
            break
        now = time.monotonic()
        wait_s = (
            None if next_event is None else max(0.0, next_event - now)
        )
        if live:
            wait(live, timeout=wait_s, return_when=FIRST_COMPLETED)
        elif wait_s is not None and wait_s > 0:
            time.sleep(min(wait_s, 0.05))
        # else: states flipped just now; loop again immediately.

    if not results:
        raise AllShardsFailed(sorted(failed), len(shard_ids))

    report = ScatterReport(
        n_shards=len(shard_ids),
        answered=tuple(sorted(results)),
        failed=tuple(sorted(failed)),
        retries=retries,
        hedges=hedges,
        timeouts=timeouts,
    )
    return [(s, results[s]) for s in sorted(results)], report


def _min_event(
    current: "Optional[float]", candidate: "Optional[float]"
) -> "Optional[float]":
    if candidate is None:
        return current
    if current is None:
        return candidate
    return min(current, candidate)
