"""Sharded NN-cell index: partition, scatter, gather — exactly.

A :class:`ShardedNNCellIndex` splits the database across ``n_shards``
independent :class:`~repro.core.nncell_index.NNCellIndex` instances and
answers queries by *scatter-gather*: fan the query out to every live
shard (concurrently, on a thread pool), then k-merge the per-shard
``(distance, id)`` results.  The merge is **exact**, not approximate:

* every shard's solution space tiles the *whole* data space (the
  NN-cells of any subset partition the box), so each shard answers with
  its true nearest member for any in-box query;
* the global nearest neighbor lives in some shard and is, a fortiori,
  that shard's nearest member — so it is always among the gathered
  per-shard winners (the same argument gives k-NN exactness: the global
  top-k is contained in the union of per-shard top-k's);
* per-shard distances come from the very same arithmetic the unsharded
  index uses (``distances_to_points`` + ``sqrt`` on identical
  operands), so the merged answer is *bit-identical* to the unsharded
  one, ties breaking to the smallest global id exactly as ``np.argmin``
  over the serially deduplicated candidate array does.

``tests/shard/test_shard_parity.py`` property-tests this equivalence
across partitioners, shard counts and dynamic insert/delete sequences;
``docs/sharding.md`` spells out the full exactness argument.

Global point ids are preserved: shard ``s`` keeps a local→global id map
and every result is translated before merging, so ids returned by the
sharded index are the positions in the original build array — the same
ids the unsharded index would return.  ``insert``/``delete`` route to
the owning shard through the (deterministic) partitioner.

Construction fans per-shard builds out over a thread pool and each
shard build honours ``BuildConfig.workers`` — i.e. the existing
:mod:`repro.engine` pool machinery (``resolve_workers`` /
``parallel_cells``) runs *inside* each shard, giving two composable
axes of build parallelism (see docs/sharding.md for tuning guidance).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.nncell_index import (
    BuildConfig,
    NNCellIndex,
    QueryExplain,
    QueryInfo,
)
from ..engine.batch import BatchQueryInfo
from ..engine.parallel import resolve_workers
from ..geometry.mbr import MBR
from ..obs import analytics, metrics, workload
from ..obs.tracing import carrier, span
from .partition import PARTITIONER_KINDS, make_partitioner
from .resilience import (
    ResilienceConfig,
    ScatterReport,
    complete_report,
    resilient_gather,
)

__all__ = ["ShardConfig", "ShardedNNCellIndex"]


@dataclass(frozen=True)
class ShardConfig:
    """Sharding parameters, orthogonal to the per-shard ``BuildConfig``.

    ``build_workers`` counts *threads fanning out shard builds* (0 = one
    per CPU core, capped at ``n_shards``); each shard build additionally
    honours its ``BuildConfig.workers``.  ``query_workers`` sizes the
    scatter pool (0 = one thread per shard, 1 = scatter inline/serially).
    """

    n_shards: int = 4
    partitioner: str = "hash"  # "hash" | "hilbert"
    hilbert_bits: int = 10
    build_workers: int = 0
    query_workers: int = 0

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.partitioner not in PARTITIONER_KINDS:
            raise ValueError(
                f"partitioner must be one of {PARTITIONER_KINDS}"
            )
        if self.hilbert_bits < 1:
            raise ValueError("hilbert_bits must be >= 1")
        if self.build_workers < 0 or self.query_workers < 0:
            raise ValueError("worker counts must be >= 0 (0 means auto)")


class ShardedNNCellIndex:
    """Scatter-gather wrapper over N independent NN-cell indexes.

    Duck-type compatible with :class:`NNCellIndex` where the serving
    stack needs it (``dim`` / ``points`` / ``active_ids`` / ``nearest``
    / ``k_nearest`` / ``query_batch`` / ``explain`` / ``stats``), so a
    :class:`repro.serve.QueryService` runs unmodified on top — its
    micro-batch flushes scatter across the shards inside one flush span.
    """

    def __init__(
        self,
        points: np.ndarray,
        shard_config: "ShardConfig | None" = None,
        build_config: "BuildConfig | None" = None,
    ):
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        self.shard_config = shard_config or ShardConfig()
        self.config = build_config or BuildConfig()
        self.points = pts.copy()
        self.dim = pts.shape[1]
        self.box = self.config.data_space or MBR.unit_cube(self.dim)
        if self.box.dim != self.dim:
            raise ValueError("data_space dimensionality mismatch")
        # Shards must share one data space: each shard's cells tile the
        # *global* box, which is what makes every shard answer any
        # in-box query exactly (the exactness precondition).
        self._shard_build_config = replace(self.config, data_space=self.box)
        self.partitioner = make_partitioner(
            self.shard_config.partitioner,
            self.shard_config.n_shards,
            pts,
            hilbert_bits=self.shard_config.hilbert_bits,
        )
        self._active = np.ones(pts.shape[0], dtype=bool)
        self._shards: "List[Optional[NNCellIndex]]" = (
            [None] * self.shard_config.n_shards
        )
        #: Per shard: local row -> global id (rows keep their slots on
        #: delete, exactly as NNCellIndex rows do).
        self._globals: "List[List[int]]" = (
            [[] for __ in range(self.shard_config.n_shards)]
        )
        self._shard_of: "List[int]" = []
        self._local_of: "List[int]" = []
        self._pool: "Optional[ThreadPoolExecutor]" = None
        self._resilience: "Optional[ResilienceConfig]" = None
        self._chaos = None  # fault-injection hook (repro.chaos)
        self._build()

    # ==================================================================
    # Construction
    # ==================================================================
    @classmethod
    def build(
        cls,
        points: np.ndarray,
        shard_config: "ShardConfig | None" = None,
        build_config: "BuildConfig | None" = None,
    ) -> "ShardedNNCellIndex":
        """Partition ``points`` and build every shard (in parallel)."""
        return cls(points, shard_config, build_config)

    @classmethod
    def from_index(
        cls, index: NNCellIndex, shard_config: "ShardConfig | None" = None
    ) -> "ShardedNNCellIndex":
        """Re-shard a built unsharded index (``serve --shards``).

        The live points are re-partitioned and each shard's solution
        space rebuilt; ids are compacted to the live points' order, so
        use this for serving fresh processes, not for id-stable
        migrations (save/load of a sharded archive preserves ids).
        """
        return cls(index.points[index.active_ids], shard_config, index.config)

    @classmethod
    def _restore(
        cls,
        *,
        points: np.ndarray,
        active: np.ndarray,
        shard_config: ShardConfig,
        build_config: BuildConfig,
        partitioner,
        shards: "List[Optional[NNCellIndex]]",
        globals_: "List[List[int]]",
        shard_of: "List[int]",
        local_of: "List[int]",
    ) -> "ShardedNNCellIndex":
        """Wire a fully-specified instance (persistence load path)."""
        self = cls.__new__(cls)
        self.shard_config = shard_config
        self.config = build_config
        self.points = np.asarray(points, dtype=np.float64)
        self.dim = self.points.shape[1]
        self.box = build_config.data_space or MBR.unit_cube(self.dim)
        self._shard_build_config = replace(build_config, data_space=self.box)
        self.partitioner = partitioner
        self._active = np.asarray(active, dtype=bool)
        self._shards = shards
        self._globals = globals_
        self._shard_of = shard_of
        self._local_of = local_of
        self._pool = None
        self._resilience = None
        self._chaos = None
        return self

    def _build(self) -> None:
        n = self.points.shape[0]
        n_shards = self.shard_config.n_shards
        assignment = self.partitioner.shard_of_batch(self.points)
        members = [np.flatnonzero(assignment == s) for s in range(n_shards)]
        self._shard_of = [int(s) for s in assignment]
        self._local_of = [0] * n
        for s, ids in enumerate(members):
            self._globals[s] = [int(g) for g in ids]
            for local, g in enumerate(ids):
                self._local_of[int(g)] = local

        workers = min(
            max(1, len([m for m in members if m.size])),
            resolve_workers(self.shard_config.build_workers),
        )
        with span(
            "shard.build",
            n_shards=n_shards,
            partitioner=self.partitioner.kind,
            workers=workers,
        ) as root:
            submit_ctx = carrier()

            def build_shard(s: int) -> "Optional[NNCellIndex]":
                if members[s].size == 0:
                    return None
                with span("shard.build_shard", shard=s,
                          n_points=int(members[s].size)):
                    return NNCellIndex.build(
                        self.points[members[s]], self._shard_build_config
                    )

            if workers > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    self._shards = list(
                        pool.map(
                            lambda s: submit_ctx.call(build_shard, s),
                            range(n_shards),
                        )
                    )
            else:
                self._shards = [build_shard(s) for s in range(n_shards)]
            root.set("shards_live", len(self._live_shards()))
        metrics.inc("shard.build.count")
        for s, ids in enumerate(members):
            metrics.observe("shard.build.points", int(ids.size))

    # ==================================================================
    # Scatter plumbing
    # ==================================================================
    def _live_shards(self) -> "List[Tuple[int, NNCellIndex]]":
        return [
            (s, shard)
            for s, shard in enumerate(self._shards)
            if shard is not None
        ]

    def set_resilience(self, config: "Optional[ResilienceConfig]") -> None:
        """Install (or, with ``None``, remove) the scatter mitigation policy.

        With a policy installed every scatter runs through
        :func:`repro.shard.resilience.resilient_gather` — per-probe
        timeouts, backoff retries, hedging, optional partial answers —
        and query infos carry ``degraded``/``failed_shards``.  Without
        one, the original wait-for-everything gather runs unchanged.
        The scatter pool is rebuilt on the next query (a resilient pool
        carries headroom for hedges and retries).
        """
        if config is not None and not isinstance(config, ResilienceConfig):
            raise TypeError("expected a ResilienceConfig or None")
        self._resilience = config
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @property
    def resilience(self) -> "Optional[ResilienceConfig]":
        return self._resilience

    def set_chaos(self, injector) -> None:
        """Install (or, with ``None``, remove) a fault injector.

        ``injector`` duck-types :class:`repro.chaos.ChaosInjector`: its
        ``before_probe(shard)`` runs inside every ``shard.probe`` span
        and may sleep or raise.  The hook is a single ``is None`` check
        when disabled — production scatters pay nothing.
        """
        self._chaos = injector

    def _scatter_pool(self) -> "Optional[ThreadPoolExecutor]":
        """The persistent fan-out pool (``None`` = scatter inline).

        A resilient scatter always gets a pool — timeouts and hedges
        need probes the gather thread does not sit behind — and it is
        oversized 2x so hedge duplicates and retries of stuck probes
        never queue behind the stragglers they are meant to beat.
        """
        workers = self.shard_config.query_workers
        resilient = self._resilience is not None
        if not resilient and (
            workers == 1 or self.shard_config.n_shards == 1
        ):
            return None
        if self._pool is None:
            size = self.shard_config.n_shards if workers == 0 else workers
            size = min(size, self.shard_config.n_shards)
            if resilient:
                size = max(2 * self.shard_config.n_shards, 2)
            self._pool = ThreadPoolExecutor(
                max_workers=size,
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def _scatter(
        self, probe: "Callable[[NNCellIndex], object]"
    ) -> "Tuple[List[Tuple[int, object]], ScatterReport]":
        """Run ``probe`` against every live shard; results in shard order.

        Each probe runs under a ``shard.probe`` span re-entered from the
        submitting context (:func:`repro.obs.tracing.carrier`), so shard
        work nests beneath the caller's span — a serve flush span
        contains the scatter — and carries the request's trace id.

        Returns ``(results, report)``: with no resilience policy the
        report is trivially complete (and a shard exception propagates,
        exactly as before); with one, the report accounts retries,
        hedges, timeouts and — under ``allow_partial`` — the shards
        missing from a degraded answer.
        """
        live = self._live_shards()
        resilience = self._resilience
        chaos = self._chaos
        pool = (
            self._scatter_pool()
            if (len(live) > 1 or resilience is not None)
            else None
        )
        submit_ctx = carrier()

        def run(item: "Tuple[int, NNCellIndex]"):
            s, shard = item
            # shard_scope is entered here, *on* the probing thread, so the
            # page/cell hooks below attribute their traffic to shard ``s``
            # (contextvars do not propagate into pool threads by default).
            with span("shard.probe", shard=s), analytics.shard_scope(s):
                analytics.record_probe(s)
                if chaos is not None:
                    chaos.before_probe(s)
                return probe(shard)

        metrics.observe("shard.fanout", len(live))
        if resilience is None:
            if pool is None:
                return (
                    [(s, run((s, shard))) for s, shard in live],
                    complete_report([s for s, __ in live]),
                )
            futures = [
                (s, pool.submit(submit_ctx.call, run, (s, shard)))
                for s, shard in live
            ]
            return (
                [(s, f.result()) for s, f in futures],
                complete_report([s for s, __ in live]),
            )

        shards = dict(live)

        def submit(s: int):
            return pool.submit(submit_ctx.call, run, (s, shards[s]))

        results, report = resilient_gather(
            [s for s, __ in live], submit, resilience
        )
        if report.degraded:
            metrics.inc("shard.degraded")
        return results, report

    def close(self) -> None:
        """Shut the scatter pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedNNCellIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ==================================================================
    # Queries
    # ==================================================================
    def nearest(
        self, query: Sequence[float]
    ) -> "Tuple[int, float, QueryInfo]":
        """Exact global nearest neighbor via scatter-gather.

        Returns ``(global id, distance, info)`` bit-identical to an
        unsharded index over the same points; ``info`` sums the
        per-shard traffic (``fallback``/``retried_atol`` are ORs).
        """
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must be a {self.dim}-vector")
        info = QueryInfo()
        with span("shard.nearest", dim=self.dim) as root:
            gathered, report = self._scatter(lambda shard: shard.nearest(q))
            with span("shard.merge", results=len(gathered)):
                best_gid, best_dist = -1, np.inf
                for s, (local, dist, shard_info) in gathered:
                    gid = self._globals[s][int(local)]
                    if dist < best_dist or (
                        dist == best_dist and gid < best_gid
                    ):
                        best_gid, best_dist = gid, dist
                    info.n_candidates += shard_info.n_candidates
                    info.pages += shard_info.pages
                    info.distance_computations += (
                        shard_info.distance_computations
                    )
                    info.fallback = info.fallback or shard_info.fallback
                    info.retried_atol = (
                        info.retried_atol or shard_info.retried_atol
                    )
            info.degraded = report.degraded
            info.failed_shards = report.failed_shards
            info.shards_answered = report.shards_answered
            root.set("candidates", info.n_candidates)
            root.set("pages", info.pages)
            if report.degraded:
                root.set("degraded", True)
                root.set("failed_shards", list(report.failed_shards))
        metrics.inc("shard.query.count")
        metrics.observe("shard.query.pages", info.pages)
        workload.record_query(
            q, int(best_gid), float(best_dist), info.pages, source="sharded"
        )
        return int(best_gid), float(best_dist), info

    def k_nearest(
        self, query: Sequence[float], k: int
    ) -> "Tuple[List[int], List[float], QueryInfo]":
        """Exact k nearest neighbors: per-shard top-k, then a k-merge.

        The global top-k is a subset of the union of per-shard top-k's
        (any global top-k member is within its own shard's top-k), so
        merging by ``(distance, global id)`` and truncating is exact.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must be a {self.dim}-vector")
        k_eff = min(k, len(self))
        info = QueryInfo()
        with span("shard.k_nearest", dim=self.dim, k=k_eff) as root:
            gathered, report = self._scatter(
                lambda shard: shard.k_nearest(q, k)
            )
            with span("shard.merge", results=len(gathered)):
                merged: "List[Tuple[float, int]]" = []
                for s, (ids, dists, shard_info) in gathered:
                    merged.extend(
                        (float(d), self._globals[s][int(i)])
                        for i, d in zip(ids, dists)
                    )
                    info.n_candidates += shard_info.n_candidates
                    info.pages += shard_info.pages
                    info.distance_computations += (
                        shard_info.distance_computations
                    )
                    info.fallback = info.fallback or shard_info.fallback
                    info.retried_atol = (
                        info.retried_atol or shard_info.retried_atol
                    )
                merged.sort()
                merged = merged[:k_eff]
            info.degraded = report.degraded
            info.failed_shards = report.failed_shards
            info.shards_answered = report.shards_answered
            root.set("candidates", info.n_candidates)
            root.set("pages", info.pages)
            if report.degraded:
                root.set("degraded", True)
                root.set("failed_shards", list(report.failed_shards))
        metrics.inc("shard.query.count")
        metrics.observe("shard.query.pages", info.pages)
        return (
            [gid for __, gid in merged],
            [dist for dist, __ in merged],
            info,
        )

    def query_batch(
        self, queries: np.ndarray, batch_size: "int | None" = None
    ) -> "Tuple[np.ndarray, np.ndarray, BatchQueryInfo]":
        """Batched scatter-gather: one batched walk *per shard*.

        The whole batch fans out to every shard's
        :meth:`NNCellIndex.query_batch` concurrently; winners merge
        per query by ``(distance, global id)``.  Returns
        ``(ids, distances, info)`` with ``info`` aggregating per-shard
        traffic — ``pages`` is the sum over shards (each shard walks
        its own tree).
        """
        qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if qs.ndim != 2 or qs.shape[1] != self.dim:
            raise ValueError(f"queries must be (m, {self.dim})")
        m = qs.shape[0]
        info = BatchQueryInfo(n_queries=m)
        ids = np.full(m, -1, dtype=np.int64)
        dists = np.full(m, np.inf)
        if m == 0:
            dists[:] = np.nan
            return ids, dists, info
        with span("shard.query_batch", n_queries=m) as root:
            gathered, report = self._scatter(
                lambda shard: shard.query_batch(qs, batch_size=batch_size)
            )
            with span("shard.merge", results=len(gathered)):
                for s, (lids, ldists, binfo) in gathered:
                    gids = np.asarray(self._globals[s], dtype=np.int64)[lids]
                    better = (ldists < dists) | (
                        (ldists == dists) & (gids < ids)
                    )
                    ids[better] = gids[better]
                    dists[better] = ldists[better]
                    info.pages += binfo.pages
                    info.distance_computations += binfo.distance_computations
                    info.n_candidates += binfo.n_candidates
                    info.fallbacks += binfo.fallbacks
                    info.retried_atol += binfo.retried_atol
                    info.n_batches += binfo.n_batches
            info.degraded = report.degraded
            info.failed_shards = report.failed_shards
            info.shards_answered = report.shards_answered
            root.set("pages", info.pages)
            root.set("candidates", info.n_candidates)
            if report.degraded:
                root.set("degraded", True)
                root.set("failed_shards", list(report.failed_shards))
        metrics.inc("shard.batch.count")
        metrics.inc("shard.batch.queries", m)
        metrics.observe("shard.query.pages", info.pages)
        workload.record_batch(qs, ids, dists, info.pages)
        return ids, dists, info

    def nearest_batch(
        self, queries: np.ndarray
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Vectorised convenience: NN ids and distances for many queries."""
        ids, dists, __ = self.query_batch(queries)
        return ids, dists

    def explain(self, query: Sequence[float]) -> QueryExplain:
        """Merged account of one query: per-shard explains, one answer.

        Rectangles and candidates carry *global* owner ids;
        ``nodes_visited``/``pages`` sum over shards; ``path``/``atol``
        come from the shard that produced the winning answer.  The
        answer fields agree with :meth:`nearest`.
        """
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must be a {self.dim}-vector")
        gathered, report = self._scatter(lambda shard: shard.explain(q))
        best: "Optional[Tuple[float, int, QueryExplain]]" = None
        rectangles = []
        candidates: "List[Tuple[int, float]]" = []
        visited = 0
        pages = 0
        for s, explain in gathered:
            gid = self._globals[s][int(explain.nearest_id)]
            key = (explain.nearest_distance, gid)
            if best is None or key < (best[0], best[1]):
                best = (explain.nearest_distance, gid, explain)
            rectangles.extend(
                (self._globals[s][int(owner)], rect)
                for owner, rect in explain.rectangles
            )
            candidates.extend(
                (self._globals[s][int(owner)], dist)
                for owner, dist in explain.candidates
            )
            visited += explain.nodes_visited
            pages += explain.pages
        candidates.sort(key=lambda pair: (pair[1], pair[0]))
        distance, gid, winner = best
        return QueryExplain(
            query=q,
            path=winner.path,
            atol=winner.atol,
            retried_atol=any(e.retried_atol for __, e in gathered),
            nearest_id=int(gid),
            nearest_distance=float(distance),
            rectangles=rectangles,
            candidates=candidates,
            nodes_visited=visited,
            pages=pages,
            degraded=report.degraded,
            failed_shards=report.failed_shards,
            shards_answered=report.shards_answered,
        )

    # ==================================================================
    # Dynamic updates
    # ==================================================================
    def insert(self, point: Sequence[float]) -> int:
        """Insert a point into its owning shard; returns the global id."""
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (self.dim,):
            raise ValueError(f"point must be a {self.dim}-vector")
        if not self.box.contains_point(p, atol=1e-12):
            raise ValueError("point lies outside the data space")
        gid = self.points.shape[0]
        s = self.partitioner.shard_of(p)
        with span("shard.insert", shard=s):
            if self._shards[s] is None:
                self._shards[s] = NNCellIndex.build(
                    p[None, :], self._shard_build_config
                )
                self._globals[s] = []
                local = 0
            else:
                local = self._shards[s].insert(p)
            self._globals[s].append(gid)
        self.points = np.vstack([self.points, p[None, :]])
        self._active = np.append(self._active, True)
        self._shard_of.append(int(s))
        self._local_of.append(int(local))
        metrics.inc("shard.insert.count")
        return gid

    def delete(self, point_id: int) -> None:
        """Remove a point from its owning shard.

        A shard whose last member is removed is torn down (and lazily
        rebuilt if a later insert routes to it); removing the globally
        last point raises ``ValueError``, as the unsharded index does.
        """
        if not (
            0 <= point_id < self._active.shape[0]
            and bool(self._active[point_id])
        ):
            raise KeyError(f"point {point_id} is not in the index")
        if int(np.sum(self._active)) == 1:
            raise ValueError("cannot delete the last remaining point")
        s = self._shard_of[point_id]
        shard = self._shards[s]
        with span("shard.delete", shard=s):
            if len(shard) == 1:
                self._shards[s] = None
                self._globals[s] = []
            else:
                shard.delete(self._local_of[point_id])
        self._active[point_id] = False
        metrics.inc("shard.delete.count")

    # ==================================================================
    # Introspection
    # ==================================================================
    def __len__(self) -> int:
        return int(np.sum(self._active))

    @property
    def n_shards(self) -> int:
        return self.shard_config.n_shards

    @property
    def active_ids(self) -> np.ndarray:
        return np.flatnonzero(self._active)

    def shard_sizes(self) -> "List[int]":
        """Live point count of every shard (0 for torn-down shards)."""
        return [
            0 if shard is None else len(shard) for shard in self._shards
        ]

    def stats(self) -> "Dict[str, float]":
        """Aggregated sizing diagnostics across shards.

        ``expected_candidates`` sums per-shard expectations — a scatter
        query scans every shard's candidates; tree heights report the
        worst shard; ``cell_tree_blocks`` is the fleet total.
        """
        per_shard = [shard.stats() for __, shard in self._live_shards()]
        return {
            "n_points": float(len(self)),
            "n_shards": float(self.n_shards),
            "shards_live": float(len(per_shard)),
            "n_rectangles": sum(s["n_rectangles"] for s in per_shard),
            "expected_candidates": sum(
                s["expected_candidates"] for s in per_shard
            ),
            "cell_tree_height": max(
                (s["cell_tree_height"] for s in per_shard), default=0.0
            ),
            "data_tree_height": max(
                (s["data_tree_height"] for s in per_shard), default=0.0
            ),
            "cell_tree_blocks": sum(
                s["cell_tree_blocks"] for s in per_shard
            ),
        }
