"""Typed failures of the sharded scatter-gather layer.

Mirrors the serving layer's philosophy (:mod:`repro.serve.errors`):
every way a scatter can fail to produce a complete answer gets a typed
exception carrying the *account* — which shards failed, and why — so
callers and drills never pattern-match message strings.  Note that with
``ResilienceConfig.allow_partial`` these are mostly *not* raised: a
scatter that lost some (but not all) shards answers degraded instead,
and only :class:`AllShardsFailed` remains possible.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["AllShardsFailed", "ShardError", "ShardProbeError"]


class ShardError(Exception):
    """Base class of every sharding-layer failure."""

    code = "shard_error"


class ShardProbeError(ShardError):
    """One or more shard probes failed permanently (retries exhausted).

    Raised by a resilient scatter running *without* ``allow_partial``:
    completeness is required, a shard could not answer, so the whole
    query fails — explicitly, with the casualty list attached.
    """

    code = "shard_probe_failed"

    def __init__(
        self, failed: "Sequence[Tuple[int, str]]", n_shards: int
    ):
        #: ``(shard id, reason)`` pairs; reason is ``"timeout"`` or
        #: ``"error"``.
        self.failed: "Tuple[Tuple[int, str], ...]" = tuple(
            (int(s), str(reason)) for s, reason in failed
        )
        self.n_shards = int(n_shards)
        casualties = ", ".join(
            f"shard {s} ({reason})" for s, reason in self.failed
        )
        super().__init__(
            f"{len(self.failed)}/{self.n_shards} shard probes failed"
            f" permanently: {casualties}"
        )

    @property
    def failed_shards(self) -> "Tuple[int, ...]":
        return tuple(s for s, __ in self.failed)


class AllShardsFailed(ShardProbeError):
    """Every live shard failed — there is no partial answer to give.

    Raised even under ``allow_partial``: a degraded answer still needs
    at least one shard's candidates.
    """

    code = "all_shards_failed"
