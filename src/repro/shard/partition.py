"""Point-to-shard routing policies.

A partitioner is a *pure, deterministic* function from a point's
coordinates to a shard number.  Determinism is what makes the sharded
index dynamic: an ``insert`` or ``delete`` long after the build must
route to the same shard the build would have chosen, with no lookup
table to keep in sync.  Two policies are provided:

* :class:`HashPartitioner` — a content hash of the coordinate bytes.
  Shards come out statistically balanced for any input distribution and
  the policy needs no fitting, but points that are close in space land
  on arbitrary shards, so every query must visit every shard.
* :class:`HilbertRangePartitioner` — points are ordered along the
  Hilbert space-filling curve (reusing
  :func:`repro.index.hilbert.hilbert_indices`, the same keys the
  Hilbert-packed bulk loader sorts by) and the key range is cut into
  ``n_shards`` contiguous runs fitted to the build set.  Spatial
  locality is preserved — a shard owns a compact region — which keeps
  per-shard candidate sets small for clustered data, at the price of
  balance depending on how well the build sample predicts future
  inserts.

Either way the scatter-gather merge in
:mod:`repro.shard.sharded` is exact (see ``docs/sharding.md``); the
partitioner only shifts *where* work happens, never *what* is returned.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict

import numpy as np

from ..index.hilbert import hilbert_indices

__all__ = [
    "PARTITIONER_KINDS",
    "HashPartitioner",
    "HilbertRangePartitioner",
    "make_partitioner",
    "partitioner_from_manifest",
]

#: Recognised ``ShardConfig.partitioner`` / CLI ``--partitioner`` values.
PARTITIONER_KINDS = ("hash", "hilbert")


class HashPartitioner:
    """Route by a stable content hash of the point's float64 bytes.

    The hash is :func:`hashlib.blake2b` over the coordinate buffer —
    process-independent (unlike Python's salted ``hash``) so a reloaded
    archive routes exactly as the process that built it did.
    """

    kind = "hash"

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = int(n_shards)

    def shard_of(self, point: np.ndarray) -> int:
        buffer = np.ascontiguousarray(point, dtype=np.float64).tobytes()
        digest = hashlib.blake2b(buffer, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.n_shards

    def shard_of_batch(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.fromiter(
            (self.shard_of(pts[i]) for i in range(pts.shape[0])),
            dtype=np.int64,
            count=pts.shape[0],
        )

    def to_manifest(self) -> "Dict[str, Any]":
        return {"kind": self.kind, "n_shards": self.n_shards}

    @classmethod
    def from_manifest(cls, doc: "Dict[str, Any]") -> "HashPartitioner":
        return cls(int(doc["n_shards"]))


class HilbertRangePartitioner:
    """Route by contiguous ranges of the Hilbert key space.

    ``uppers[i]`` is the largest key owned by shard ``i`` (for
    ``i < n_shards - 1``); a key routes to the first shard whose upper
    bound is not below it, and keys beyond every bound go to the last
    shard.  Bounds are fitted with :meth:`fit` so the build set splits
    into near-equal runs; duplicated keys never straddle a boundary
    (routing is a function of the key alone), so a run of identical
    points always shares a shard.
    """

    kind = "hilbert"

    def __init__(self, n_shards: int, uppers: np.ndarray, bits: int):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = int(n_shards)
        self.uppers = np.asarray(uppers, dtype=np.int64)
        if self.uppers.shape != (self.n_shards - 1,):
            raise ValueError("uppers must have n_shards - 1 entries")
        if self.uppers.size > 1 and np.any(np.diff(self.uppers) < 0):
            raise ValueError("uppers must be non-decreasing")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = int(bits)

    @classmethod
    def fit(
        cls, points: np.ndarray, n_shards: int, bits: int = 10
    ) -> "HilbertRangePartitioner":
        """Bounds splitting ``points`` into ``n_shards`` near-equal runs."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n, dim = pts.shape
        if n == 0:
            raise ValueError("cannot fit a partitioner to zero points")
        bits = min(bits, max(1, 62 // dim))
        keys = np.sort(hilbert_indices(pts, bits=bits))
        cuts = [
            keys[min(n - 1, math.ceil(n * (i + 1) / n_shards) - 1)]
            for i in range(n_shards - 1)
        ]
        return cls(n_shards, np.asarray(cuts, dtype=np.int64), bits)

    def shard_of(self, point: np.ndarray) -> int:
        p = np.asarray(point, dtype=np.float64)
        key = hilbert_indices(p[None, :], bits=self.bits)[0]
        return int(np.searchsorted(self.uppers, key, side="left"))

    def shard_of_batch(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        keys = hilbert_indices(pts, bits=self.bits)
        return np.searchsorted(self.uppers, keys, side="left").astype(np.int64)

    def to_manifest(self) -> "Dict[str, Any]":
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "bits": self.bits,
            "uppers": [int(u) for u in self.uppers],
        }

    @classmethod
    def from_manifest(cls, doc: "Dict[str, Any]") -> "HilbertRangePartitioner":
        return cls(
            int(doc["n_shards"]),
            np.asarray(doc["uppers"], dtype=np.int64),
            int(doc["bits"]),
        )


def make_partitioner(
    kind: str, n_shards: int, points: np.ndarray, hilbert_bits: int = 10
):
    """Build-time factory: a fitted partitioner of the requested kind."""
    if kind == "hash":
        return HashPartitioner(n_shards)
    if kind == "hilbert":
        return HilbertRangePartitioner.fit(points, n_shards, bits=hilbert_bits)
    raise ValueError(
        f"unknown partitioner {kind!r} (expected one of {PARTITIONER_KINDS})"
    )


def partitioner_from_manifest(doc: "Dict[str, Any]"):
    """Rebuild a saved partitioner from its manifest dictionary."""
    kind = doc.get("kind")
    if kind == "hash":
        return HashPartitioner.from_manifest(doc)
    if kind == "hilbert":
        return HilbertRangePartitioner.from_manifest(doc)
    raise ValueError(f"unknown partitioner kind in manifest: {kind!r}")
