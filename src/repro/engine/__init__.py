"""repro.engine — the execution layer: parallel build, batched queries.

The layers below this one are *algorithms* (LPs, trees, cells); this
package is about *throughput*.  It contains no new geometry — only two
orchestrations of the existing pipeline:

* :mod:`repro.engine.parallel` — cell construction fanned out over a
  process (or thread) pool.  The paper's precomputation solves ``2d``
  linear programs per data point (Definition 3), one point independent
  of the next — embarrassingly parallel.  Workers rebuild identical
  read-only state and results merge in point-id order, so the built
  index is bit-identical to a serial build for every worker count.
* :mod:`repro.engine.batch` — many point queries answered in one shared
  tree walk plus one vectorised candidate distance scan, amortising
  page reads and NumPy dispatch across the batch.

Both are reached through the normal API (``BuildConfig(workers=...)``,
``NNCellIndex.query_batch``); importing this package directly is only
needed for the lower-level entry points.
"""

from .batch import BatchQueryInfo, batched_point_query, query_batch
from .parallel import CellWorkshop, chunk_ids, parallel_cells, resolve_workers

__all__ = [
    "BatchQueryInfo",
    "CellWorkshop",
    "batched_point_query",
    "chunk_ids",
    "parallel_cells",
    "query_batch",
    "resolve_workers",
]
