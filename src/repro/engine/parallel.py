"""Parallel cell construction: the ``2d``-LP workload across a pool.

Precomputation is the expensive half of the paper's trade (Section 4
reports build times in minutes); each point's cell is computed from
read-only state — the point set, the data tree, the selector — so the
work chunks cleanly.  This module fans the per-point pipeline of
:mod:`repro.core.nncell_index` (``compute_cell``: candidate selection →
constraint system → ``2d`` LPs → optional decomposition) out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (or a thread pool when
the LP backend releases the GIL — scipy's HiGHS does for the solve
itself; the pure-Python simplex does not, so processes are the default).

**Determinism.**  Every worker rebuilds the same state from the same
inputs with the same code (:class:`CellWorkshop` calls the very
functions the serial build uses), LP solves are deterministic, and chunk
results are merged in submission order — so the cells, and therefore the
bulk-loaded tree, are *bit-identical* to a serial build for any worker
count, executor, or chunk size.  ``tests/engine/test_parallel_build.py``
asserts this.

Worker observability: child processes run with instrumentation disabled
(metrics registries are per-process), so each chunk result carries its
own CPU time and LP-call count; the parent re-emits them as
``build.worker_chunk`` spans and ``build.parallel.*`` metrics.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.approximation import lp_call_count
from ..core.candidates import CandidateSelector
from ..core.nncell_index import (
    BuildConfig,
    compute_cell,
    load_data_tree,
    make_tree,
)
from ..geometry.halfspace import HalfspaceSystem
from ..geometry.mbr import MBR
from ..lp import interface as lp_interface
from ..obs import events, metrics
from ..obs.tracing import carrier, span

__all__ = [
    "CellWorkshop",
    "ChunkResult",
    "chunk_ids",
    "parallel_cells",
    "resolve_workers",
]

#: Chunks per worker: >1 so a fast worker can steal the tail of the
#: workload instead of idling behind the slowest chunk.
DEFAULT_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int) -> int:
    """Map the ``BuildConfig.workers`` convention to a concrete count
    (``0`` means one worker per CPU core)."""
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 means all CPU cores)")
    if workers == 0:
        return max(1, os.cpu_count() or 1)
    return workers


def chunk_ids(
    n: int, workers: int, chunk_size: "int | None" = None
) -> "List[np.ndarray]":
    """Contiguous point-id chunks covering ``range(n)`` in order.

    Chunk *boundaries* depend on the worker count; the merged result
    never does, because chunks are consumed in submission order.
    """
    if n <= 0:
        return []
    if chunk_size is None:
        chunk_size = -(-n // (workers * DEFAULT_CHUNKS_PER_WORKER))
    chunk_size = max(1, int(chunk_size))
    return [
        np.arange(start, min(start + chunk_size, n))
        for start in range(0, n, chunk_size)
    ]


@dataclass
class ChunkResult:
    """One chunk's cells plus the worker-side cost accounting."""

    cells: "List[Tuple[HalfspaceSystem, List[MBR]]]"
    worker: str
    cpu_seconds: float
    lp_calls: int


class CellWorkshop:
    """Self-contained rebuild of the read-only build state.

    One lives in every worker (process or thread).  It reconstructs the
    data tree and candidate selector exactly as ``NNCellIndex._build``
    does — same bulk loader, same parameters — which is the determinism
    guarantee: ``compute(i)`` here returns byte-for-byte what the serial
    build computes for point ``i``.
    """

    def __init__(self, points: np.ndarray, config: BuildConfig):
        self.points = np.asarray(points, dtype=np.float64)
        self.config = config
        dim = self.points.shape[1]
        self.box = config.data_space or MBR.unit_cube(dim)
        self.data_tree = make_tree(
            dim, config, leaf_entry_bytes=8 * dim + 8
        )
        load_data_tree(self.data_tree, self.points, config)
        self.selector = CandidateSelector(
            self.points,
            self.data_tree,
            config.selector,
            config.selector_params,
        )

    def compute(
        self, point_id: int
    ) -> "Tuple[HalfspaceSystem, List[MBR]]":
        return compute_cell(
            self.points, self.selector, self.box, self.config, int(point_id)
        )

    def compute_chunk(self, ids: Sequence[int]) -> ChunkResult:
        started = time.perf_counter()
        lp_before = lp_call_count()
        # Worker-side span: a no-op in process workers (tracing is per
        # process and off there), but thread workers run under the
        # submitter's carried context, so this nests beneath
        # `build.cells.parallel` and inherits its trace id.
        with span(
            "build.chunk.compute",
            worker=_worker_label(),
            n_points=len(ids),
        ):
            cells = [self.compute(int(i)) for i in ids]
        return ChunkResult(
            cells=cells,
            worker=_worker_label(),
            cpu_seconds=time.perf_counter() - started,
            lp_calls=lp_call_count() - lp_before,
        )


def _worker_label() -> str:
    return f"pid-{os.getpid()}/t-{threading.get_ident()}"


# ----------------------------------------------------------------------
# Pool plumbing.  Worker entry points must be module-level for pickling;
# per-worker state lives in a process global (process pool) or
# thread-local storage (thread pool).
# ----------------------------------------------------------------------

_PROCESS_WORKSHOP: "CellWorkshop | None" = None
_THREAD_LOCAL = threading.local()


def _init_process_worker(
    points: np.ndarray, config: BuildConfig, lp_backend: str
) -> None:
    global _PROCESS_WORKSHOP
    lp_interface.set_default_backend(lp_backend)
    _PROCESS_WORKSHOP = CellWorkshop(points, config)


def _process_chunk(ids: np.ndarray) -> ChunkResult:
    return _PROCESS_WORKSHOP.compute_chunk(ids)


def _thread_chunk(ids: np.ndarray) -> ChunkResult:
    return _THREAD_LOCAL.workshop.compute_chunk(ids)


def _mp_context():
    """Prefer fork (cheap, inherits PYTHONPATH implicitly); fall back to
    the platform default where fork is unavailable."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_cells(
    points: np.ndarray,
    config: BuildConfig,
    workers: int,
    chunk_size: "int | None" = None,
) -> "List[Tuple[HalfspaceSystem, List[MBR]]]":
    """All cells of ``points`` computed by a worker pool, in point-id
    order — the parallel counterpart of the serial loop in
    ``NNCellIndex._build``."""
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    workers = resolve_workers(workers)
    chunks = chunk_ids(n, workers, chunk_size or config.build_chunk_size)
    metrics.inc("build.parallel.builds")
    with span(
        "build.cells.parallel",
        workers=workers,
        executor=config.executor,
        chunks=len(chunks),
    ) as root:
        if config.executor == "thread":
            def _init_thread_worker() -> None:
                _THREAD_LOCAL.workshop = CellWorkshop(pts, config)

            pool = ThreadPoolExecutor(
                max_workers=workers, initializer=_init_thread_worker
            )
            # Thread workers run in their own contextvars context, so
            # spans they open would detach from this build (and from any
            # enclosing request's trace id).  Capture the submitting
            # context once and re-enter it around every chunk: worker
            # spans parent under `build.cells.parallel` and carry the
            # submitter's trace id, matching the serial span tree.
            # (Process workers cannot share a span tree; the parent
            # re-emits their accounting as `build.worker_chunk` below.)
            submit_ctx = carrier()

            def run_chunk(ids: np.ndarray) -> ChunkResult:
                return submit_ctx.call(_thread_chunk, ids)
        else:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_mp_context(),
                initializer=_init_process_worker,
                initargs=(pts, config, lp_interface.get_default_backend()),
            )
            run_chunk = _process_chunk

        cells: "List[Tuple[HalfspaceSystem, List[MBR]]]" = []
        total_lp_calls = 0
        lp_before = lp_call_count()
        with pool:
            for chunk, result in zip(chunks, pool.map(run_chunk, chunks)):
                # Worker-side instrumentation cannot reach this process's
                # registry; re-emit the chunk's accounting here.  (Thread
                # workers share one process-global LP counter, so their
                # per-chunk deltas overlap — chunk lp_calls are exact for
                # processes, indicative for threads; the total below is
                # exact for both.)
                with span("build.worker_chunk", worker=result.worker) as ws:
                    ws.set("n_points", int(chunk.shape[0]))
                    ws.set("lp_calls", result.lp_calls)
                    ws.set("worker_cpu_seconds", result.cpu_seconds)
                metrics.inc("build.parallel.chunks")
                metrics.observe("build.chunk_points", int(chunk.shape[0]))
                if events.enabled():
                    events.emit(
                        "build_chunk",
                        worker=result.worker,
                        n_points=int(chunk.shape[0]),
                        lp_calls=result.lp_calls,
                        duration_ms=1e3 * result.cpu_seconds,
                    )
                total_lp_calls += result.lp_calls
                cells.extend(result.cells)
        if config.executor == "thread":
            total_lp_calls = lp_call_count() - lp_before
        metrics.inc("build.parallel.lp_calls", total_lp_calls)
        root.set("lp_calls", total_lp_calls)
    return cells
