"""Batched query engine: many point queries, one tree walk.

Serving batches is where the solution-space approach shines — a NN query
is a *point query*, and point queries over the same tree share their
descent.  Instead of walking root→leaf once per query, the batched walk
carries a whole *set* of query points down the tree: each node is read
once, its entry rectangles are tested against every live query in one
vectorised containment check, and the query set splits across children.
Page reads (the paper's cost currency) are therefore paid per *node
touched by the batch*, not per query; the candidate distance scan at the
end is likewise one NumPy pass over all (query, owner) pairs.

**Semantics.**  ``query_batch(index, Q)`` returns exactly what calling
``index.nearest(q)`` per row returns — the same ids and bit-identical
distances, including the serial path's tolerance-retry and
branch-and-bound fallback behaviour (ties break to the smallest owner
id, matching ``np.argmin`` over the serially deduplicated candidate
array).  The parity suite in ``tests/engine/test_batch.py`` asserts
this.  Only the *accounting* differs: page counts are amortised, and
diagnostics come back as one :class:`BatchQueryInfo` for the batch.

``batch_size`` bounds how many queries walk together (the vectorised
containment test materialises an ``entries × queries`` mask per node);
``None`` walks the whole batch at once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..index.nnsearch import rkv_nearest
from ..index.rstar import RStarTree
from ..obs import analytics, events, metrics, workload
from ..obs.tracing import span

__all__ = ["BatchQueryInfo", "batched_point_query", "query_batch"]


@dataclass
class BatchQueryInfo:
    """Aggregated diagnostics of one :func:`query_batch` call.

    The per-query counterpart is :class:`repro.core.nncell_index.QueryInfo`;
    fields here are sums over the batch, except ``pages``, which is the
    *shared* page traffic — the amortisation being measured.
    """

    n_queries: int = 0
    pages: int = 0
    distance_computations: int = 0
    n_candidates: int = 0
    fallbacks: int = 0
    retried_atol: int = 0
    n_batches: int = 0  # internal walks (ceil(n_queries / batch_size))
    #: Sharded serving only: the batch answered without every shard
    #: (every query in the batch shares the casualty list).
    degraded: bool = False
    failed_shards: "Tuple[int, ...]" = ()
    #: Shards that contributed (``None`` outside sharded serving).
    shards_answered: "Optional[int]" = None


def batched_point_query(
    tree: RStarTree, queries: np.ndarray, atol: float = 1e-12
) -> "Tuple[np.ndarray, np.ndarray]":
    """All (query index, entry id) containment pairs in one tree walk.

    The multi-query generalisation of :meth:`RStarTree.point_query`,
    using the same containment arithmetic (``low <= q + atol``); each
    node on the union of the queries' paths is read exactly once.  Pairs
    may repeat when an entry id is stored under several rectangles
    (decomposed cells) — callers deduplicate, as the serial path does.
    """
    q = np.asarray(queries, dtype=np.float64)
    out_queries = []
    out_entries = []
    if q.shape[0]:
        stack = [(tree.root_id, np.arange(q.shape[0]))]
        while stack:
            node_id, live = stack.pop()
            node = tree._read(node_id)
            if node.n_entries == 0:
                continue
            sub = q[live]
            mask = np.all(
                node.lows[:, None, :] <= sub[None, :, :] + atol, axis=2
            )
            mask &= np.all(
                sub[None, :, :] <= node.highs[:, None, :] + atol, axis=2
            )
            if node.is_leaf:
                entry_idx, query_idx = np.nonzero(mask)
                if entry_idx.size:
                    out_queries.append(live[query_idx])
                    out_entries.append(node.ids[entry_idx])
            else:
                for entry in np.flatnonzero(np.any(mask, axis=1)):
                    stack.append(
                        (int(node.ids[entry]), live[np.flatnonzero(mask[entry])])
                    )
    if not out_queries:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    return (
        np.concatenate(out_queries).astype(np.int64, copy=False),
        np.concatenate(out_entries).astype(np.int64, copy=False),
    )


def query_batch(
    index, queries: np.ndarray, batch_size: "int | None" = None
) -> "Tuple[np.ndarray, np.ndarray, BatchQueryInfo]":
    """Nearest neighbors of every row of ``queries``.

    Returns ``(ids, distances, info)``; see the module docstring for the
    equivalence guarantee with the serial :meth:`NNCellIndex.nearest`.
    """
    qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if qs.ndim != 2 or qs.shape[1] != index.dim:
        raise ValueError(f"queries must be (m, {index.dim})")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    m = qs.shape[0]
    info = BatchQueryInfo(n_queries=m)
    ids = np.full(m, -1, dtype=np.int64)
    dists = np.full(m, np.nan)
    if m == 0:
        return ids, dists, info
    size = m if batch_size is None else min(batch_size, m)
    emit_events = events.enabled()
    started = time.perf_counter() if emit_events else 0.0
    metrics.inc("query.batch.count")
    metrics.inc("query.batch.queries", m)
    metrics.observe("query.batch_size", m)
    with span("query.batch", n_queries=m, dim=index.dim,
              batch_size=size) as root:
        for start in range(0, m, size):
            stop = min(start + size, m)
            _walk_chunk(
                index, qs[start:stop], ids[start:stop], dists[start:stop],
                info,
            )
            info.n_batches += 1
        root.set("pages", info.pages)
        root.set("candidates", info.n_candidates)
        root.set("fallbacks", info.fallbacks)
    metrics.observe("query.batch.pages", info.pages)
    workload.record_batch(qs, ids, dists, info.pages)
    if emit_events:
        events.emit(
            "batch",
            n_queries=m,
            candidates=info.n_candidates,
            pages=info.pages,
            fallbacks=info.fallbacks,
            retried_atol=info.retried_atol,
            duration_ms=1e3 * (time.perf_counter() - started),
        )
    return ids, dists, info


def _walk_chunk(
    index,
    q: np.ndarray,
    ids_out: np.ndarray,
    dists_out: np.ndarray,
    info: BatchQueryInfo,
) -> None:
    """One batched walk: point queries, retries, scan, fallbacks.

    ``ids_out``/``dists_out`` are writable views into the caller's
    result arrays.
    """
    atol = index.config.query_atol
    k = q.shape[0]
    # Same arithmetic as MBR.contains_point, vectorised over the chunk.
    inside = np.logical_and(
        np.all(index.box.low - atol <= q, axis=1),
        np.all(q <= index.box.high + atol, axis=1),
    )
    in_box = np.flatnonzero(inside)

    pages_before = index.cell_tree.pages.stats.logical_reads
    with span("query.batch.point_query") as lookup:
        pair_q, pair_owner = batched_point_query(
            index.cell_tree, q[in_box], atol
        )
        pair_q = in_box[pair_q]
        # Chunk-level mirror of the serial tolerance retry: queries whose
        # point query came back empty re-walk once with a looser bound
        # before falling back.
        matched = np.zeros(k, dtype=bool)
        matched[pair_q] = True
        missing = in_box[~matched[in_box]]
        if missing.size:
            info.retried_atol += int(missing.size)
            metrics.inc("query.atol_retries", int(missing.size))
            retry_q, retry_owner = batched_point_query(
                index.cell_tree, q[missing], max(atol * 1e4, 1e-6)
            )
            pair_q = np.concatenate([pair_q, missing[retry_q]])
            pair_owner = np.concatenate([pair_owner, retry_owner])
        chunk_pages = (
            index.cell_tree.pages.stats.logical_reads - pages_before
        )
        info.pages += chunk_pages
        lookup.set("pages", chunk_pages)

    if pair_q.size:
        # Deduplicate (query, owner) pairs — decomposed cells store one
        # owner under several rectangles.  The combined key sorts by
        # query then owner, reproducing the serial np.unique ordering.
        keys = np.unique(pair_q * np.int64(index.points.shape[0]) + pair_owner)
        pair_q = keys // index.points.shape[0]
        pair_owner = keys % index.points.shape[0]
        with span("query.batch.candidate_scan") as scan:
            diff = index.points[pair_owner] - q[pair_q]
            dist_sq = np.einsum("ij,ij->i", diff, diff)
            # Per-query argmin: order by (query, distance, owner) and
            # keep each query's first row — minimum distance, ties to
            # the smallest owner id, exactly like np.argmin over the
            # serially deduplicated candidate array.
            order = np.lexsort((pair_owner, dist_sq, pair_q))
            sorted_q = pair_q[order]
            first = np.ones(sorted_q.size, dtype=bool)
            first[1:] = sorted_q[1:] != sorted_q[:-1]
            best = order[first]
            ids_out[pair_q[best]] = pair_owner[best]
            dists_out[pair_q[best]] = np.sqrt(dist_sq[best])
            info.n_candidates += int(pair_q.size)
            info.distance_computations += int(pair_q.size)
            scan.set("candidates", int(pair_q.size))
        analytics.record_cells(pair_owner)
        if metrics.enabled():
            counts = np.bincount(pair_q, minlength=k)
            for count in counts[counts > 0]:
                metrics.observe("query.candidates", int(count))

    # Out-of-box queries — and in-box ones still empty after the retry —
    # take the same branch-and-bound fallback as the serial path.
    answered = np.zeros(k, dtype=bool)
    if pair_q.size:
        answered[pair_q] = True
    for j in np.flatnonzero(~answered):
        info.fallbacks += 1
        metrics.inc("query.fallbacks")
        with span("query.fallback"):
            result = rkv_nearest(index.data_tree, q[j])
        ids_out[j] = result.nearest_id
        dists_out[j] = result.nearest_distance
        info.pages += result.pages
        info.distance_computations += result.distance_computations
