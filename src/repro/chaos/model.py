"""Modelled-clock scatter-gather latency under faults and mitigations.

Real wall-clock chaos runs are noisy and slow — a p99 needs thousands
of queries and real sleeps.  This model computes the *same* completion
times analytically, on a virtual clock, from the same policy parameters
the live path uses (:class:`repro.shard.ResilienceConfig` semantics):

* a probe attempt against a healthy shard takes ``base_ms``; against a
  faulted shard it takes ``slow_ms`` with probability ``slow_p``
  (fresh draw per attempt — retries and hedges re-roll, exactly like
  :class:`~repro.chaos.faults.ChaosInjector`);
* **no mitigation**: the query waits for every shard — latency is the
  max over shards of one uncapped attempt;
* **timeout + retry**: an attempt is abandoned at ``timeout_ms``; the
  shard retries after an exponential backoff until an attempt finishes
  in time (attempts capped at ``max_retries + 1``; an exhausted shard
  contributes its total spent time);
* **hedging**: at ``hedge_after_ms`` into an attempt a duplicate is
  launched and the earlier finisher wins —
  ``min(d1, hedge_after + d2)`` — composing with the timeout/retry cap;
* **partial**: the gather stops waiting at ``deadline_ms`` and answers
  degraded from the shards that made it.

Deterministic for a given seed; ``benchmarks/bench_chaos.py`` publishes
the resulting p50/p99 trajectory to ``BENCH_chaos.json`` and CI gates
the hedged-vs-unmitigated p99 ratio at >= 3x.  The model is unit-tested
against its own invariants in ``tests/chaos/test_model.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["ScatterModel", "SimResult", "percentile", "simulate"]


def percentile(values: "Sequence[float]", q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class ScatterModel:
    """Workload + fault + policy parameters of one simulation."""

    n_shards: int = 4
    #: Healthy probe latency (model units; milliseconds by convention).
    base_ms: float = 1.0
    #: Shard ids afflicted by latency spikes.
    slow_shards: "tuple" = (0,)
    #: Per-attempt spike probability on an afflicted shard.
    slow_p: float = 0.15
    #: Attempt latency when the spike hits (the "10x-slow" shard).
    slow_ms: float = 10.0
    #: Per-attempt timeout of the mitigated policies.
    timeout_ms: float = 1.5
    #: Extra attempts after the first (mitigated policies).
    max_retries: int = 3
    #: Backoff before retry k: ``backoff_base_ms * backoff_factor**(k-1)``.
    backoff_base_ms: float = 0.1
    backoff_factor: float = 2.0
    #: Hedge launch delay within an attempt (hedged policy).
    hedge_after_ms: float = 0.3
    #: Gather deadline of the partial policy.
    deadline_ms: float = 1.5

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 0.0 <= self.slow_p <= 1.0:
            raise ValueError("slow_p must be in [0, 1]")
        for name in ("base_ms", "slow_ms", "timeout_ms", "hedge_after_ms",
                     "deadline_ms"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def attempt_ms(self, shard: int, rng: random.Random) -> float:
        """One attempt's intrinsic duration (fresh draw)."""
        if shard in self.slow_shards and rng.random() < self.slow_p:
            return self.slow_ms
        return self.base_ms


@dataclass
class SimResult:
    """Latency samples plus accounting from one simulated policy run."""

    policy: str
    latencies_ms: "List[float]" = field(default_factory=list)
    retries: int = 0
    hedges: int = 0
    timeouts: int = 0
    degraded: int = 0  # queries answered without every shard

    @property
    def n_queries(self) -> int:
        return len(self.latencies_ms)

    def p(self, q: float) -> float:
        return percentile(self.latencies_ms, q)

    def summary(self) -> "Dict[str, float]":
        return {
            "p50_ms": self.p(50.0),
            "p99_ms": self.p(99.0),
            "max_ms": max(self.latencies_ms) if self.latencies_ms else 0.0,
            "retries": float(self.retries),
            "hedges": float(self.hedges),
            "timeouts": float(self.timeouts),
            "degraded": float(self.degraded),
            "degraded_rate": (
                self.degraded / self.n_queries if self.n_queries else 0.0
            ),
        }


def _shard_completion(
    model: ScatterModel,
    shard: int,
    rng: random.Random,
    hedged: bool,
    result: SimResult,
) -> float:
    """Virtual time until ``shard`` answers under timeout+retry(+hedge).

    Mirrors the live gather loop: attempts are capped at ``timeout_ms``;
    a hedged attempt finishes at ``min(d1, hedge_after + d2)``; each
    retry waits an exponential backoff first.  An exhausted shard
    (every attempt timed out) reports its total spent time — the live
    path would mark it failed at the same instant.
    """
    clock = 0.0
    for attempt in range(model.max_retries + 1):
        if attempt:
            result.retries += 1
            clock += (
                model.backoff_base_ms
                * model.backoff_factor ** (attempt - 1)
            )
        duration = model.attempt_ms(shard, rng)
        if hedged and duration > model.hedge_after_ms:
            result.hedges += 1
            duration = min(
                duration,
                model.hedge_after_ms + model.attempt_ms(shard, rng),
            )
        if duration <= model.timeout_ms:
            return clock + duration
        result.timeouts += 1
        clock += model.timeout_ms
    return clock


def simulate(
    model: ScatterModel,
    policy: str,
    n_queries: int = 10_000,
    seed: int = 0,
) -> SimResult:
    """Run ``n_queries`` scatter-gathers under ``policy`` on the model.

    Policies: ``"none"`` (wait for everything, uncapped),
    ``"timeout"`` (per-probe timeout + backoff retries),
    ``"hedge"`` (timeout + retries + hedged duplicates), and
    ``"partial"`` (hedged, but the gather stops at ``deadline_ms`` and
    answers degraded).
    """
    if policy not in ("none", "timeout", "hedge", "partial"):
        raise ValueError(f"unknown policy {policy!r}")
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    rng = random.Random(seed)
    result = SimResult(policy=policy)
    for __ in range(n_queries):
        if policy == "none":
            latency = max(
                model.attempt_ms(s, rng) for s in range(model.n_shards)
            )
        else:
            hedged = policy in ("hedge", "partial")
            completions = [
                _shard_completion(model, s, rng, hedged, result)
                for s in range(model.n_shards)
            ]
            latency = max(completions)
            if policy == "partial" and latency > model.deadline_ms:
                # The gather answers at the deadline from whoever made
                # it; at least one shard always has (base < deadline).
                latency = model.deadline_ms
                result.degraded += 1
        result.latencies_ms.append(latency)
    return result
