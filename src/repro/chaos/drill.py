"""Reproducible failure drills: chaos in, verified resilience out.

A *drill* is the closed loop the ``repro chaos`` CLI subcommand and
``tools/chaos_smoke.py`` both run:

1. take a built :class:`~repro.shard.ShardedNNCellIndex` (and a clean
   unsharded twin over the same points for ground truth);
2. install a seeded :class:`~repro.chaos.faults.ChaosInjector` on the
   scatter path (and, when the plan has page faults, on every shard's
   page managers);
3. drive ``n_queries`` concurrent queries through a
   :class:`~repro.serve.QueryService` over the faulted fleet;
4. verify the resilience contract on every single response:

   * an **ok** (non-degraded) answer must be bit-identical to the clean
     index's answer — faults may cost latency, never correctness;
   * a **degraded** answer must say so explicitly and name its missing
     shards (silently-partial answers are the one unforgivable bug);
   * an error must be a *typed* serve failure — injected faults never
     surface as raw exceptions.

The returned :class:`DrillReport` carries the outcome tally, the
injected-fault counts, and the ``shard.retry`` / ``shard.hedge`` /
``shard.timeout`` / ``shard.degraded`` counters observed during the
drill, so callers can assert the mitigation actually engaged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.nncell_index import NNCellIndex
from ..data.synthetic import query_points
from ..obs import metrics
from ..serve import QueryService, ServeConfig, ServeError
from .faults import ChaosInjector, FaultPlan

__all__ = ["DrillReport", "install_page_chaos", "run_drill"]

#: Counters the report extracts from the drill-scoped registry.  The
#: ``shard.*`` resilience counters and ``serve.fallback`` are dimensional
#: (``shard=`` / ``stage=`` labels); the report aggregates every label
#: set back under the base name via :func:`repro.obs.metrics.sum_labeled`.
_DRILL_COUNTERS = (
    "shard.retry",
    "shard.hedge",
    "shard.timeout",
    "shard.degraded",
    "serve.degraded_answers",
    "serve.fallback",
    "storage.flaky_reads",
)


@dataclass
class DrillReport:
    """Everything one drill observed, verified and counted."""

    n_queries: int
    n_threads: int
    #: ``"ok"`` / ``"degraded"`` / ``"error:<code>"`` -> count.
    outcomes: "Dict[str, int]" = field(default_factory=dict)
    #: Non-degraded answers that differed from the clean index (bugs).
    mismatches: int = 0
    #: Degraded answers that failed to name their missing shards (bugs).
    unaccounted_degraded: int = 0
    #: Raw (non-``ServeError``) exceptions that reached a client (bugs).
    untyped_errors: int = 0
    #: What the injector actually fired (``ChaosInjector.counts``).
    injected: "Dict[str, int]" = field(default_factory=dict)
    #: Resilience counters observed during the drill.
    counters: "Dict[str, float]" = field(default_factory=dict)
    #: Union of every failed-shard id reported on degraded answers.
    faulted_shards: "List[int]" = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """The resilience contract held for every response."""
        return (
            self.mismatches == 0
            and self.unaccounted_degraded == 0
            and self.untyped_errors == 0
        )

    @property
    def degraded(self) -> int:
        return self.outcomes.get("degraded", 0)

    @property
    def errors(self) -> int:
        return sum(
            count for key, count in self.outcomes.items()
            if key.startswith("error:")
        )

    def as_dict(self) -> "Dict[str, object]":
        return {
            "n_queries": self.n_queries,
            "n_threads": self.n_threads,
            "outcomes": dict(self.outcomes),
            "mismatches": self.mismatches,
            "unaccounted_degraded": self.unaccounted_degraded,
            "untyped_errors": self.untyped_errors,
            "injected": dict(self.injected),
            "counters": dict(self.counters),
            "faulted_shards": list(self.faulted_shards),
            "passed": self.passed,
        }


def install_page_chaos(index, injector: "Optional[ChaosInjector]") -> None:
    """Hook (or unhook, with ``None``) every live shard's page managers."""
    for __, shard in index._live_shards():
        shard.cell_tree.pages.set_chaos(injector)
        shard.data_tree.pages.set_chaos(injector)


def run_drill(
    index,
    plan: FaultPlan,
    n_queries: int = 200,
    n_threads: int = 4,
    seed: int = 0,
    serve_config: "ServeConfig | None" = None,
    truth: "NNCellIndex | None" = None,
) -> DrillReport:
    """Run one failure drill against ``index`` (sharded) under ``plan``.

    ``index`` should already carry the resilience policy under test
    (:meth:`~repro.shard.ShardedNNCellIndex.set_resilience`).  ``truth``
    overrides the clean unsharded twin (built here otherwise).  The
    injector is installed for the duration of the drill and removed —
    and its stuck probes released — on the way out, whatever happens.
    """
    if n_queries < 1 or n_threads < 1:
        raise ValueError("n_queries and n_threads must be >= 1")
    if truth is None:
        truth = NNCellIndex.build(index.points, index.config)
    queries = query_points(n_queries, index.dim, seed=seed)
    exp_ids, exp_dists, __ = truth.query_batch(queries)

    injector = ChaosInjector(plan)
    report = DrillReport(n_queries=n_queries, n_threads=n_threads)
    results: "List[Optional[object]]" = [None] * n_queries
    failures: "List[Tuple[int, BaseException]]" = []
    fail_lock = threading.Lock()

    index.set_chaos(injector)
    if plan.pages.any_active:
        install_page_chaos(index, injector)
    try:
        with metrics.collecting(fresh=True) as registry:
            config = serve_config or ServeConfig(
                max_batch_size=32, max_wait_ms=5.0
            )
            with QueryService(index, config) as service:
                def client(thread_idx: int) -> None:
                    for i in range(thread_idx, n_queries, n_threads):
                        try:
                            results[i] = service.submit(queries[i])
                        except BaseException as err:  # verified below
                            with fail_lock:
                                failures.append((i, err))

                threads = [
                    threading.Thread(
                        target=client, args=(t,), name=f"drill-client-{t}"
                    )
                    for t in range(n_threads)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            snapshot = registry.snapshot()
    finally:
        injector.release()
        index.set_chaos(None)
        if plan.pages.any_active:
            install_page_chaos(index, None)

    # ------------------------------------------------------------------
    # Verify the contract response by response.
    # ------------------------------------------------------------------
    faulted: "set" = set()
    for i, result in enumerate(results):
        if result is None:
            continue
        if result.degraded:
            _tally(report.outcomes, "degraded")
            if not result.failed_shards:
                report.unaccounted_degraded += 1
            faulted.update(result.failed_shards)
            continue
        _tally(report.outcomes, "ok")
        if (
            result.point_id != int(exp_ids[i])
            or result.distance != float(exp_dists[i])
        ):
            report.mismatches += 1
    for __, err in failures:
        if isinstance(err, ServeError):
            _tally(report.outcomes, f"error:{err.code}")
        else:
            report.untyped_errors += 1
            _tally(report.outcomes, f"error:{type(err).__name__}")

    report.injected = injector.counts()
    # One aggregate entry per base name, plus each labeled child under
    # its canonical key (`serve.fallback{stage="scan"}`) so the report
    # says which rung / which shard, not just how often.
    counters: "Dict[str, float]" = {}
    for name in _DRILL_COUNTERS:
        total = metrics.sum_labeled(snapshot, name)
        if not total:
            continue
        counters[name] = total
        prefix = name + "{"
        for key, value in sorted(snapshot.items()):
            if key.startswith(prefix) and value:
                counters[key] = value
    report.counters = counters
    report.faulted_shards = sorted(faulted)
    return report


def _tally(outcomes: "Dict[str, int]", key: str) -> None:
    outcomes[key] = outcomes.get(key, 0) + 1
