"""Deterministic, seedable fault injection for the serving stack.

Distributed serving fails in a handful of canonical ways — a shard goes
slow, a shard throws, a probe wedges, a disk read flakes — and a
resilience layer is only trustworthy if those failures can be *produced
on demand, reproducibly*.  This module is that production line:

* :class:`ShardFaults` / :class:`PageFaults` declare the failure mix of
  one injection site (probability-driven from a seeded RNG, or
  deterministic "fail the first N" counters for tests);
* :class:`FaultPlan` maps shard ids to their faults plus an optional
  storage-layer fault spec, under one seed;
* :class:`ChaosInjector` executes a plan: the scatter path calls
  :meth:`ChaosInjector.before_probe` before each shard probe and the
  page layer calls :meth:`ChaosInjector.page_read` per read attempt.
  Both are wired through a single ``is None`` check at the hook sites
  (:meth:`repro.shard.ShardedNNCellIndex.set_chaos`,
  :meth:`repro.storage.PageManager.set_chaos`), so a process that never
  installs an injector pays one attribute load — zero overhead when
  disabled.

Injected failures raise :class:`InjectedFault` subclasses, never bare
``Exception``, so test assertions can tell a drill's own faults from a
genuine bug ("zero non-typed errors" in ``tools/chaos_smoke.py``).

Determinism: one locked ``random.Random(seed)`` drives every
probabilistic decision, so a single-threaded replay of the same plan
makes identical choices.  Under concurrency the *assignment* of draws
to probes follows thread scheduling; the deterministic ``fail_first`` /
``stuck_first`` counters are per-site and scheduling-independent, which
is what the property suites use.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "ChaosInjector",
    "FaultPlan",
    "FlakyPageRead",
    "InjectedFault",
    "PageFaults",
    "ShardFaults",
    "StuckProbe",
]


class InjectedFault(Exception):
    """Base class of every chaos-injected failure (typed, on purpose)."""

    code = "injected_fault"


class FlakyPageRead(InjectedFault):
    """One storage read attempt failed transiently (retryable)."""

    code = "flaky_page_read"


class StuckProbe(InjectedFault):
    """A stuck probe was released by injector teardown, not by answering.

    Raised *after* the block, so an abandoned probe thread unwinds
    instead of delivering a stale answer once the drill ends.
    """

    code = "stuck_probe"


@dataclass(frozen=True)
class ShardFaults:
    """Failure mix of one shard's probe site.

    Probabilities are per *probe attempt* (retries and hedges re-draw),
    which is exactly what makes retrying/hedging effective against
    them.  The ``*_first`` counters are deterministic: the first N
    probes of this shard fault regardless of the RNG — use these in
    tests that must not depend on draw order.
    """

    #: Probability a probe attempt is delayed by ``slow_ms``.
    slow_p: float = 0.0
    #: Injected latency of a slow attempt, milliseconds.
    slow_ms: float = 0.0
    #: Probability a probe attempt raises :class:`InjectedFault`.
    fail_p: float = 0.0
    #: Deterministically fail this many attempts before behaving.
    fail_first: int = 0
    #: Probability a probe attempt blocks until release or ``stuck_ms``.
    stuck_p: float = 0.0
    #: Deterministically wedge this many attempts before behaving.
    stuck_first: int = 0
    #: How long a stuck attempt blocks, milliseconds; ``None`` blocks
    #: until :meth:`ChaosInjector.release` (only a probe timeout can
    #: save the query).
    stuck_ms: "Optional[float]" = None

    def __post_init__(self):
        for name in ("slow_p", "fail_p", "stuck_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.slow_ms < 0.0:
            raise ValueError("slow_ms must be >= 0")
        if self.fail_first < 0 or self.stuck_first < 0:
            raise ValueError("*_first counters must be >= 0")
        if self.stuck_ms is not None and self.stuck_ms < 0.0:
            raise ValueError("stuck_ms must be >= 0 or None")

    @property
    def any_active(self) -> bool:
        return bool(
            self.slow_p or self.fail_p or self.stuck_p
            or self.fail_first or self.stuck_first
        )


@dataclass(frozen=True)
class PageFaults:
    """Failure mix of the storage layer's read path."""

    #: Probability one read *attempt* raises :class:`FlakyPageRead`
    #: (the page layer re-issues the read up to its retry budget).
    flaky_p: float = 0.0
    #: Deterministically fail this many read attempts before behaving.
    flaky_first: int = 0

    def __post_init__(self):
        if not 0.0 <= self.flaky_p <= 1.0:
            raise ValueError("flaky_p must be in [0, 1]")
        if self.flaky_first < 0:
            raise ValueError("flaky_first must be >= 0")

    @property
    def any_active(self) -> bool:
        return bool(self.flaky_p or self.flaky_first)


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible failure drill: shard faults + page faults + seed."""

    #: Shard id -> that shard's failure mix.  Shards not listed are
    #: healthy (``default`` overrides that).
    shards: "Dict[int, ShardFaults]" = field(default_factory=dict)
    #: Faults applied to shards absent from ``shards``.
    default: ShardFaults = ShardFaults()
    #: Storage-read faults (every hooked :class:`PageManager`).
    pages: PageFaults = PageFaults()
    #: RNG seed for every probabilistic decision.
    seed: int = 0

    def faults_of(self, shard: int) -> ShardFaults:
        return self.shards.get(shard, self.default)


class ChaosInjector:
    """Executes a :class:`FaultPlan` at the hook sites, counting as it goes.

    Thread-safe; every count and RNG draw is serialised by one lock (the
    hook sites are probe workers).  The injected *sleeps and blocks*
    happen outside the lock, so one slow shard never blocks another
    shard's draw.

    Counters (:meth:`counts`) record what was actually injected —
    ``slow`` / ``fail`` / ``stuck`` / ``flaky_page`` totals plus
    per-shard ``shard<N>.<kind>`` breakdowns — so drills can assert the
    plan really fired.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._rng = random.Random(plan.seed)
        self._counts: "Dict[str, int]" = {}
        self._fail_left: "Dict[int, int]" = {
            s: f.fail_first for s, f in plan.shards.items()
        }
        self._stuck_left: "Dict[int, int]" = {
            s: f.stuck_first for s, f in plan.shards.items()
        }
        self._flaky_left = plan.pages.flaky_first
        self._released = threading.Event()

    # ------------------------------------------------------------------
    # Hook sites
    # ------------------------------------------------------------------
    def before_probe(self, shard: int) -> None:
        """Run the fault decision for one probe attempt against ``shard``.

        May sleep (latency spike), block (stuck probe) or raise
        :class:`InjectedFault`; returns normally for a healthy attempt.
        """
        faults = self.plan.faults_of(shard)
        if not faults.any_active:
            return
        with self._lock:
            left = self._fail_left.get(shard, 0)
            if left > 0:
                self._fail_left[shard] = left - 1
                self._count(shard, "fail")
                fail = True
            else:
                fail = faults.fail_p > 0 and self._rng.random() < faults.fail_p
                if fail:
                    self._count(shard, "fail")
            if not fail:
                left = self._stuck_left.get(shard, 0)
                if left > 0:
                    self._stuck_left[shard] = left - 1
                    self._count(shard, "stuck")
                    stuck = True
                else:
                    stuck = (
                        faults.stuck_p > 0
                        and self._rng.random() < faults.stuck_p
                    )
                    if stuck:
                        self._count(shard, "stuck")
                slow = (
                    not stuck
                    and faults.slow_p > 0
                    and self._rng.random() < faults.slow_p
                )
                if slow:
                    self._count(shard, "slow")
        if fail:
            raise InjectedFault(f"injected failure on shard {shard}")
        if stuck:
            timeout = (
                None if faults.stuck_ms is None else faults.stuck_ms / 1e3
            )
            released = self._released.wait(timeout)
            if released:
                raise StuckProbe(
                    f"stuck probe on shard {shard} released at teardown"
                )
            return  # stuck_ms elapsed: behave like a (very) slow probe
        if slow:
            time.sleep(faults.slow_ms / 1e3)

    def page_read(self, page_id: int) -> None:
        """Fault decision for one storage read attempt (may raise)."""
        faults = self.plan.pages
        if not faults.any_active:
            return
        with self._lock:
            if self._flaky_left > 0:
                self._flaky_left -= 1
                flaky = True
            else:
                flaky = (
                    faults.flaky_p > 0
                    and self._rng.random() < faults.flaky_p
                )
            if flaky:
                self._counts["flaky_page"] = (
                    self._counts.get("flaky_page", 0) + 1
                )
        if flaky:
            raise FlakyPageRead(f"injected flaky read of page {page_id}")

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def release(self) -> None:
        """Free every stuck probe (they unwind with :class:`StuckProbe`).

        Call at drill teardown so abandoned probe threads do not outlive
        the drill.  Idempotent.
        """
        self._released.set()

    def counts(self) -> "Dict[str, int]":
        """Copy of the injected-fault counters."""
        with self._lock:
            return dict(self._counts)

    def total(self, kind: str) -> int:
        """Total injections of one kind (``slow``/``fail``/``stuck``/
        ``flaky_page``)."""
        with self._lock:
            return self._counts.get(kind, 0)

    def _count(self, shard: int, kind: str) -> None:
        # Caller holds the lock.
        self._counts[kind] = self._counts.get(kind, 0) + 1
        key = f"shard{shard}.{kind}"
        self._counts[key] = self._counts.get(key, 0) + 1

    def __enter__(self) -> "ChaosInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
