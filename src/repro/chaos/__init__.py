"""Fault injection and failure drills for the scatter-gather stack.

``repro.chaos`` makes failure a first-class, reproducible input:

* :mod:`repro.chaos.faults` — seedable :class:`ChaosInjector` executing
  a :class:`FaultPlan` (per-shard latency spikes, raised exceptions,
  stuck probes; flaky page reads) at two hook sites —
  :meth:`repro.shard.ShardedNNCellIndex.set_chaos` and
  :meth:`repro.storage.PageManager.set_chaos` — with zero overhead
  while no injector is installed;
* :mod:`repro.chaos.model` — modelled-clock simulation of scatter
  latency under the mitigation policies (no mitigation, timeout+retry,
  hedging, partial answers), feeding ``benchmarks/bench_chaos.py``;
* :mod:`repro.chaos.drill` — the end-to-end drill harness behind the
  ``repro chaos`` CLI subcommand and CI's ``tools/chaos_smoke.py``.

The mitigations themselves live with the scatter path in
:mod:`repro.shard.resilience`; this package only *breaks* things and
*verifies* the response.  See ``docs/resilience.md``.
"""

from .drill import DrillReport, install_page_chaos, run_drill
from .faults import (
    ChaosInjector,
    FaultPlan,
    FlakyPageRead,
    InjectedFault,
    PageFaults,
    ShardFaults,
    StuckProbe,
)
from .model import ScatterModel, SimResult, percentile, simulate

__all__ = [
    "ChaosInjector",
    "DrillReport",
    "FaultPlan",
    "FlakyPageRead",
    "InjectedFault",
    "PageFaults",
    "ScatterModel",
    "ShardFaults",
    "SimResult",
    "StuckProbe",
    "install_page_chaos",
    "percentile",
    "run_drill",
    "simulate",
]
